//! The resident graph registry: named graphs held in memory across
//! requests, with buffered edge mutations and periodic CSR rebuilds.
//!
//! The CSR representation is immutable by design (that is what makes the
//! detection kernels fast), so mutation is write-behind: edge inserts and
//! deletes accumulate in an order-preserving buffer and are folded into a
//! fresh CSR either when the buffer reaches [`REBUILD_BATCH`] operations,
//! when a client forces it, or — always — before a detection snapshot, so
//! every detection sees all acknowledged edits.

use crate::wal::WalWriter;
use parcom_graph::relabel::Relabeling;
use parcom_graph::{Graph, GraphBuilder, Node};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// Pending-operation count that triggers an automatic rebuild at the end of
/// an edge-batch request. Large enough to amortize the O(n + m) CSR
/// rebuild over many small batches, small enough to keep the fold cheap.
pub const REBUILD_BATCH: usize = 4096;

/// Hard cap on one entry's buffered operations: a request that would push
/// the buffer past this is shed with `429` instead of queued (the bounded
/// admission half of DESIGN.md §16). Since rebuilds fire at
/// [`REBUILD_BATCH`], only a single oversized batch can approach the cap.
pub const MAX_PENDING_OPS: usize = 4 * REBUILD_BATCH;

/// Locks an entry, tolerating poisoning. Every [`GraphEntry`] mutator
/// either commits no state on unwind ([`GraphEntry::rebuild`] builds the
/// new CSR before touching any field) or fails stop (a WAL append wedges
/// its writer), so a panicking request thread leaves the entry consistent
/// and later requests may keep serving it.
pub fn lock_entry(entry: &Mutex<GraphEntry>) -> MutexGuard<'_, GraphEntry> {
    entry.lock().unwrap_or_else(|e| e.into_inner())
}

/// One buffered mutation. Operations are kept in arrival order so that
/// within a window, later operations on an edge override earlier ones
/// (insert-then-delete deletes; delete-then-insert re-inserts).
#[derive(Clone, Copy, Debug)]
pub enum EdgeOp {
    /// Insert the edge, or overwrite its weight if it already exists.
    Insert(Node, Node, f64),
    /// Remove the edge if present (a no-op otherwise).
    Remove(Node, Node),
}

/// A named resident graph plus its mutation buffer.
pub struct GraphEntry {
    graph: Arc<Graph>,
    /// When the resident CSR is a relabeled view (loaded from a `.pcg`
    /// written with `--relabel`, or relabeled at load), the permutation
    /// back to original ids. Detection handlers map partitions through it
    /// before emission, so clients always see original ids.
    relabeling: Option<Arc<Relabeling>>,
    pending: Vec<EdgeOp>,
    /// Bumped on every rebuild; lets clients correlate detection results
    /// with the graph version they ran against.
    generation: u64,
    rebuilds: u64,
    /// Sequence number of the last acknowledged batch: the WAL record
    /// sequence when durable, a plain batch counter otherwise.
    seq: u64,
    /// The write-ahead log this entry appends to before acknowledging a
    /// batch; `None` when the daemon runs without `--state-dir`.
    wal: Option<WalWriter>,
    /// Sticky flag: a rebuild dropped the relabeling permutation (the
    /// mutated CSR no longer matches its degree order). Reported in batch
    /// responses and stats so the 1.1–1.3× relabel win never vanishes
    /// silently.
    relabel_dropped: bool,
    /// Operations folded in since the last checkpoint; drives the
    /// automatic checkpoint cadence.
    ops_since_checkpoint: usize,
}

/// A point-in-time summary of one entry, for listings.
pub struct EntryStats {
    /// Node count of the current CSR.
    pub nodes: usize,
    /// Edge count of the current CSR.
    pub edges: usize,
    /// Buffered operations not yet folded in.
    pub pending: usize,
    /// Current generation (rebuild counter of the resident CSR).
    pub generation: u64,
    /// Total rebuilds since load.
    pub rebuilds: u64,
    /// Whether the resident CSR is a relabeled (cache-ordered) view.
    pub relabeled: bool,
    /// Whether a rebuild dropped a relabeling this entry once had.
    pub relabel_dropped: bool,
    /// Sequence of the last acknowledged batch (WAL record when durable).
    pub seq: u64,
    /// Whether the entry appends to a write-ahead log.
    pub durable: bool,
}

/// Canonicalizes one operation's endpoint order so fold keys match the
/// CSR's `u <= v` edge orientation — applied before WAL append, so the log
/// stores exactly what the buffer holds.
fn canonical(op: EdgeOp) -> EdgeOp {
    match op {
        EdgeOp::Insert(u, v, w) => EdgeOp::Insert(u.min(v), u.max(v), w),
        EdgeOp::Remove(u, v) => EdgeOp::Remove(u.min(v), u.max(v)),
    }
}

impl GraphEntry {
    /// A fresh entry at sequence 0 with no log attached. Public so the
    /// durability layer can persist an entry *before* it becomes visible
    /// in the store.
    pub fn new(graph: Graph, relabeling: Option<Relabeling>) -> Self {
        Self {
            graph: Arc::new(graph),
            relabeling: relabeling.map(Arc::new),
            pending: Vec::new(),
            generation: 0,
            rebuilds: 0,
            seq: 0,
            wal: None,
            relabel_dropped: false,
            ops_since_checkpoint: 0,
        }
    }

    /// Appends a batch of operations, canonicalizing endpoint order so the
    /// fold's keys match the CSR's `u <= v` edge orientation. Returns the
    /// pending count after the append. Low-level: does *not* touch the WAL
    /// or the sequence — recovery replay and tests use it directly; the
    /// request path goes through [`GraphEntry::commit_ops`].
    pub fn buffer_ops(&mut self, ops: impl IntoIterator<Item = EdgeOp>) -> usize {
        for op in ops {
            self.pending.push(canonical(op));
        }
        self.pending.len()
    }

    /// The durable batch path: canonicalizes, appends one WAL record (when
    /// a log is attached) and only then buffers — so by the time the batch
    /// is acknowledged it is already on disk. On a WAL error *nothing* is
    /// buffered and the error propagates (the writer wedges itself;
    /// DESIGN.md §16).
    pub fn commit_ops(&mut self, ops: Vec<EdgeOp>) -> std::io::Result<usize> {
        let ops: Vec<EdgeOp> = ops.into_iter().map(canonical).collect();
        match &mut self.wal {
            Some(wal) => self.seq = wal.append(&ops)?,
            None => self.seq += 1,
        }
        self.ops_since_checkpoint += ops.len();
        self.pending.extend(ops);
        Ok(self.pending.len())
    }

    /// Attaches the write-ahead log this entry will append to. The log's
    /// last sequence must equal the entry's (a fresh log is created at the
    /// entry's checkpoint sequence).
    pub fn attach_wal(&mut self, wal: WalWriter) {
        debug_assert_eq!(wal.last_seq(), self.seq);
        self.wal = Some(wal);
        self.ops_since_checkpoint = 0;
    }

    /// Sequence of the last acknowledged batch.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Overrides the sequence counter — recovery replay only, where the
    /// sequence comes from the checkpoint header and the replayed records.
    pub fn set_seq(&mut self, seq: u64) {
        self.seq = seq;
    }

    /// Operations folded in since the last checkpoint (drives the
    /// automatic checkpoint cadence).
    pub fn ops_since_checkpoint(&self) -> usize {
        self.ops_since_checkpoint
    }

    /// Flushes the attached log to disk regardless of fsync policy — the
    /// graceful-shutdown path.
    pub fn sync_wal(&mut self) -> std::io::Result<()> {
        match &mut self.wal {
            Some(wal) => wal.sync(),
            None => Ok(()),
        }
    }

    /// Whether the buffer has reached the automatic rebuild threshold.
    pub fn rebuild_due(&self) -> bool {
        self.pending.len() >= REBUILD_BATCH
    }

    /// Folds the pending buffer into a fresh CSR. The final state of each
    /// touched edge is resolved in arrival order first, then applied in one
    /// pass over the collected edge set; node ids beyond the current range
    /// grow the graph. No-op when the buffer is empty.
    ///
    /// Unwind-safe: every field mutation happens *after* the new CSR is
    /// fully built, so a panic mid-rebuild (allocation failure, injected
    /// fault at `serve/store-rebuild`) leaves the resident graph, the
    /// pending buffer and the WAL exactly as they were — the rebuild can
    /// simply be retried. The rebuilt CSR is bit-identical for a given
    /// (graph, buffered-op-sequence) pair regardless of thread count or
    /// rebuild batching, because the builder canonicalizes rows by
    /// `(neighbor, weight bits)`; recovery replay relies on this.
    pub fn rebuild(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        // arrival-order resolution: last op per edge wins
        let mut delta: HashMap<(Node, Node), Option<f64>> =
            HashMap::with_capacity(self.pending.len());
        let mut max_node: Node = 0;
        for op in &self.pending {
            match *op {
                EdgeOp::Insert(u, v, w) => {
                    max_node = max_node.max(v);
                    delta.insert((u, v), Some(w));
                }
                EdgeOp::Remove(u, v) => {
                    delta.insert((u, v), None);
                }
            }
        }
        let mut edges = self.graph.par_collect_edges();
        // Edge operations arrive in *original* ids, so a relabeled CSR is
        // un-relabeled before the fold and the relabeling dropped: the
        // permutation is a load-time read optimization, and a mutated graph
        // no longer matches the degree order it was converted under.
        if let Some(r) = &self.relabeling {
            for e in edges.iter_mut() {
                let (u, v) = (r.to_old_id(e.0), r.to_old_id(e.1));
                (e.0, e.1) = (u.min(v), u.max(v));
            }
        }
        // replace or drop existing edges; whatever remains in `delta` after
        // this pass is a genuinely new edge
        edges.retain_mut(|(u, v, w)| match delta.remove(&(*u, *v)) {
            Some(Some(new_w)) => {
                *w = new_w;
                true
            }
            Some(None) => false,
            None => true,
        });
        for ((u, v), value) in delta {
            if let Some(w) = value {
                edges.push((u, v, w));
            }
        }
        let n = self.graph.node_count().max(max_node as usize + 1);
        let mut builder = GraphBuilder::with_capacity(n, edges.len());
        builder.extend_edges(edges);
        parcom_guard::faultpoint!("serve/store-rebuild");
        let rebuilt = builder.build();
        // Commit point: nothing above mutated the entry.
        if self.relabeling.take().is_some() {
            self.relabel_dropped = true;
        }
        self.pending.clear();
        self.graph = Arc::new(rebuilt);
        self.generation += 1;
        self.rebuilds += 1;
    }

    /// The resident CSR (pending operations excluded), its relabeling (if
    /// still valid), and its generation.
    pub fn current(&self) -> (Arc<Graph>, Option<Arc<Relabeling>>, u64) {
        (
            Arc::clone(&self.graph),
            self.relabeling.clone(),
            self.generation,
        )
    }

    /// Listing summary.
    pub fn stats(&self) -> EntryStats {
        EntryStats {
            nodes: self.graph.node_count(),
            edges: self.graph.edge_count(),
            pending: self.pending.len(),
            generation: self.generation,
            rebuilds: self.rebuilds,
            relabeled: self.relabeling.is_some(),
            relabel_dropped: self.relabel_dropped,
            seq: self.seq,
            durable: self.wal.is_some(),
        }
    }
}

/// The store: graph name → entry. The outer map lock is held only for
/// lookup/insert/remove; per-entry work (buffering, rebuilds) runs under the
/// entry's own mutex, so a long rebuild of one graph never blocks requests
/// against another.
#[derive(Default)]
pub struct GraphStore {
    inner: RwLock<HashMap<String, Arc<Mutex<GraphEntry>>>>,
}

impl GraphStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) a named graph, with the relabeling stored
    /// alongside it when the graph is a relabeled view. Returns whether a
    /// previous graph of that name was replaced.
    pub fn insert(&self, name: &str, graph: Graph, relabeling: Option<Relabeling>) -> bool {
        self.insert_entry(name, GraphEntry::new(graph, relabeling))
    }

    /// Inserts (or replaces) a pre-built entry — the durability layer
    /// persists an entry (checkpoint + fresh WAL) *before* handing it over,
    /// so a graph is never visible in the store without its on-disk state.
    pub fn insert_entry(&self, name: &str, entry: GraphEntry) -> bool {
        self.inner
            .write()
            .unwrap()
            .insert(name.to_string(), Arc::new(Mutex::new(entry)))
            .is_some()
    }

    /// Evicts a named graph; `false` if it was not resident. In-flight
    /// detections keep their `Arc<Graph>` snapshot alive until they finish.
    pub fn remove(&self, name: &str) -> bool {
        self.inner.write().unwrap().remove(name).is_some()
    }

    /// The entry for `name`, if resident.
    pub fn get(&self, name: &str) -> Option<Arc<Mutex<GraphEntry>>> {
        self.inner.read().unwrap().get(name).cloned()
    }

    /// A consistent detection snapshot: flushes the entry's pending buffer
    /// (so the detection sees all acknowledged edits) and returns the CSR
    /// as a cheap `Arc` clone plus its relabeling (when the view is still
    /// relabeled) and generation. The entry lock is released before
    /// detection starts — concurrent mutations build new CSRs while old
    /// snapshots keep running.
    pub fn snapshot(&self, name: &str) -> Option<(Arc<Graph>, Option<Arc<Relabeling>>, u64)> {
        let entry = self.get(name)?;
        let mut entry = lock_entry(&entry);
        entry.rebuild();
        Some(entry.current())
    }

    /// Sorted names with per-entry stats.
    pub fn list(&self) -> Vec<(String, EntryStats)> {
        let mut rows: Vec<(String, EntryStats)> = self
            .inner
            .read()
            .unwrap()
            .iter()
            .map(|(name, entry)| (name.clone(), lock_entry(entry).stats()))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }

    /// Number of resident graphs.
    pub fn len(&self) -> usize {
        self.inner.read().unwrap().len()
    }

    /// Whether no graphs are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcom_graph::GraphBuilder;

    fn path_graph(n: usize) -> Graph {
        let edges: Vec<(Node, Node)> = (0..n as Node - 1).map(|u| (u, u + 1)).collect();
        GraphBuilder::from_edges(n, &edges)
    }

    #[test]
    fn ops_apply_in_arrival_order() {
        let store = GraphStore::new();
        store.insert("p", path_graph(4), None);
        let entry = store.get("p").unwrap();
        {
            let mut e = entry.lock().unwrap();
            // insert-then-remove cancels; remove-then-insert survives
            e.buffer_ops([
                EdgeOp::Insert(0, 3, 1.0),
                EdgeOp::Remove(3, 0),
                EdgeOp::Remove(1, 2),
                EdgeOp::Insert(2, 1, 5.0),
            ]);
            e.rebuild();
        }
        let (g, _, generation) = store.snapshot("p").unwrap();
        assert_eq!(generation, 1);
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.edge_weight(1, 2), Some(5.0));
    }

    #[test]
    fn inserts_grow_the_node_range() {
        let store = GraphStore::new();
        store.insert("p", path_graph(3), None);
        let entry = store.get("p").unwrap();
        entry
            .lock()
            .unwrap()
            .buffer_ops([EdgeOp::Insert(2, 9, 2.0)]);
        let (g, _, _) = store.snapshot("p").unwrap();
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.edge_weight(2, 9), Some(2.0));
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn snapshot_flushes_and_eviction_keeps_snapshots_alive() {
        let store = GraphStore::new();
        store.insert("p", path_graph(5), None);
        let entry = store.get("p").unwrap();
        entry.lock().unwrap().buffer_ops([EdgeOp::Remove(0, 1)]);
        let (g, _, generation) = store.snapshot("p").unwrap();
        assert_eq!(generation, 1);
        assert!(!g.has_edge(0, 1));
        assert!(store.remove("p"));
        assert!(!store.remove("p"));
        // the snapshot outlives the eviction
        assert_eq!(g.node_count(), 5);
    }

    #[test]
    fn mutation_unrelabels_and_drops_the_relabeling() {
        // A star so the degree order is not the identity: hub 3 gets new id 0.
        let g = GraphBuilder::from_edges(5, &[(3, 0), (3, 1), (3, 2), (3, 4), (0, 1)]);
        let r = Relabeling::degree_ordered(&g);
        let relabeled = r.apply(&g);
        let store = GraphStore::new();
        store.insert("s", relabeled, Some(r));
        let (_, rel, _) = store.snapshot("s").unwrap();
        assert!(rel.is_some(), "unmutated snapshot keeps the relabeling");
        assert!(store.get("s").unwrap().lock().unwrap().stats().relabeled);

        // Ops arrive in original ids: connect 2-4 and drop the 0-1 chord.
        let entry = store.get("s").unwrap();
        entry
            .lock()
            .unwrap()
            .buffer_ops([EdgeOp::Insert(2, 4, 2.0), EdgeOp::Remove(0, 1)]);
        let (g2, rel, generation) = store.snapshot("s").unwrap();
        assert_eq!(generation, 1);
        assert!(rel.is_none(), "mutation invalidates the relabeling");
        // The rebuilt CSR is back in original ids.
        assert_eq!(g2.edge_weight(2, 4), Some(2.0));
        assert!(!g2.has_edge(0, 1));
        assert!(g2.has_edge(3, 0));
        assert_eq!(g2.degree(3), 4);
    }

    #[test]
    fn weight_overwrite_replaces_instead_of_accumulating() {
        let store = GraphStore::new();
        store.insert("p", path_graph(3), None);
        let entry = store.get("p").unwrap();
        entry
            .lock()
            .unwrap()
            .buffer_ops([EdgeOp::Insert(0, 1, 7.5)]);
        let (g, _, _) = store.snapshot("p").unwrap();
        assert_eq!(g.edge_weight(0, 1), Some(7.5));
        assert_eq!(g.edge_count(), 2);
    }
}
