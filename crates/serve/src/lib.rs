#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # parcom-serve — the resident clustering daemon
//!
//! Loading a corpus graph dominates end-to-end latency for every CLI run:
//! parsing PGPgiantcompo takes longer than clustering it. This crate keeps
//! graphs *resident* — parsed once into CSR, held in memory under a name —
//! and answers detection requests against them over a hand-rolled HTTP/1.1
//! API (TCP and/or Unix domain socket; no external dependencies, the build
//! environment is offline).
//!
//! The request surface (DESIGN.md §13):
//!
//! * `PUT /graphs/{name}` — budgeted ingest (header admission *before*
//!   allocation) from a server-side path or inline METIS content.
//! * `POST /detect` — any registered algorithm via
//!   [`DetectorSpec`](parcom_core::DetectorSpec), run under a per-request
//!   [`Budget`]: deadline, sweep cap, and cancellation the moment the
//!   client disconnects (a watcher thread peeks the socket while the
//!   detection runs). The response streams back chunked JSON embedding the
//!   full `parcom-run-report/v2`.
//! * `POST /graphs/{name}/edges` — buffered edge inserts/removes with
//!   periodic CSR rebuild ([`store::REBUILD_BATCH`]); detection snapshots
//!   always flush first, so results reflect every acknowledged edit.
//!
//! Threading model: one acceptor per listener, one thread per connection,
//! plus one short-lived watcher thread per in-flight detection. The store
//! itself is two-level locked (map lock for lookup, per-entry mutex for
//! mutation) so a rebuild of one graph never blocks requests to another.

pub mod conn;
pub mod http;
pub mod store;

pub mod handlers;

use conn::{Conn, DisconnectWatch};
use http::{error_body, respond_chunked_json, respond_json, ReadError, RequestReader};
use parcom_guard::{Budget, CancelToken};
use std::io;
use std::net::TcpListener;
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use store::GraphStore;

/// Idle keep-alive timeout between requests on one connection.
const KEEP_ALIVE: Duration = Duration::from_secs(60);

/// Daemon configuration: where to listen and how much graph to admit.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Unix-domain socket path to listen on (removed and re-bound at
    /// startup if it exists).
    pub socket: Option<PathBuf>,
    /// TCP address to listen on, e.g. `127.0.0.1:7071`.
    pub addr: Option<String>,
    /// Ingest admission cap on node count (`usize::MAX` = unlimited).
    pub max_nodes: usize,
    /// Ingest admission cap on edge count (`usize::MAX` = unlimited).
    pub max_edges: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            socket: None,
            addr: None,
            max_nodes: usize::MAX,
            max_edges: usize::MAX,
        }
    }
}

impl ServeConfig {
    /// The ingest admission budget: input limits only, checked against the
    /// METIS header before any allocation happens.
    pub fn ingest_budget(&self) -> Budget {
        if self.max_nodes == usize::MAX && self.max_edges == usize::MAX {
            Budget::unlimited()
        } else {
            Budget::unlimited().with_input_limits(self.max_nodes, self.max_edges)
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

/// A bound (but not yet serving) daemon.
pub struct Server {
    config: ServeConfig,
    store: Arc<GraphStore>,
    listeners: Vec<Listener>,
}

impl Server {
    /// Binds every listener named by `config`. At least one of `socket` /
    /// `addr` must be set. A stale socket file from a previous run is
    /// removed before binding.
    pub fn bind(config: ServeConfig) -> io::Result<Self> {
        let mut listeners = Vec::new();
        if let Some(addr) = &config.addr {
            listeners.push(Listener::Tcp(TcpListener::bind(addr.as_str())?));
        }
        #[cfg(unix)]
        if let Some(path) = &config.socket {
            if path.exists() {
                std::fs::remove_file(path)?;
            }
            listeners.push(Listener::Unix(UnixListener::bind(path)?));
        }
        #[cfg(not(unix))]
        if config.socket.is_some() {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            ));
        }
        if listeners.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "serve needs a socket path or a TCP address to listen on",
            ));
        }
        Ok(Self {
            config,
            store: Arc::new(GraphStore::new()),
            listeners,
        })
    }

    /// The shared store — exposed so embedders (tests, benches) can
    /// pre-load graphs without going through the API.
    pub fn store(&self) -> Arc<GraphStore> {
        Arc::clone(&self.store)
    }

    /// The first bound TCP address, when listening on TCP — lets callers
    /// bind port 0 and discover the ephemeral port.
    pub fn local_tcp_addr(&self) -> Option<std::net::SocketAddr> {
        self.listeners.iter().find_map(|l| match l {
            Listener::Tcp(t) => t.local_addr().ok(),
            #[cfg(unix)]
            Listener::Unix(_) => None,
        })
    }

    /// Serves forever: accepts on every bound listener, one thread per
    /// connection. Only returns if *all* accept loops fail.
    pub fn run(self) -> io::Result<()> {
        let Server {
            config,
            store,
            listeners,
        } = self;
        let mut handles = Vec::new();
        for listener in listeners {
            let store = Arc::clone(&store);
            let config = config.clone();
            handles.push(
                std::thread::Builder::new()
                    .name("parcom-serve-accept".into())
                    .spawn(move || match listener {
                        // request/response turnarounds are small writes; Nagle
                        // + delayed-ACK stalls would add tens of ms per request
                        Listener::Tcp(l) => accept_loop(
                            l.incoming().map(|s| {
                                s.inspect(|s| {
                                    let _ = s.set_nodelay(true);
                                })
                            }),
                            store,
                            config,
                        ),
                        #[cfg(unix)]
                        Listener::Unix(l) => accept_loop(l.incoming(), store, config),
                    })?,
            );
        }
        for handle in handles {
            let _ = handle.join();
        }
        Ok(())
    }
}

fn accept_loop<S, I>(incoming: I, store: Arc<GraphStore>, config: ServeConfig)
where
    S: Conn + 'static,
    I: Iterator<Item = io::Result<S>>,
{
    for stream in incoming {
        let Ok(stream) = stream else { continue };
        let store = Arc::clone(&store);
        let config = config.clone();
        let _ = std::thread::Builder::new()
            .name("parcom-serve-conn".into())
            .spawn(move || {
                let mut boxed: Box<dyn Conn> = Box::new(stream);
                serve_connection(&mut boxed, &store, &config);
            });
    }
}

/// Runs the keep-alive request loop of one connection until the client
/// closes, asks to close, or errors.
fn serve_connection(conn: &mut Box<dyn Conn>, store: &GraphStore, config: &ServeConfig) {
    let mut reader = RequestReader::new();
    loop {
        if conn.set_read_timeout_conn(Some(KEEP_ALIVE)).is_err() {
            return;
        }
        let request = match reader.read_request(&mut **conn) {
            Ok(request) => request,
            Err(ReadError::Closed) | Err(ReadError::Io(_)) => return,
            Err(ReadError::Bad(status, message)) => {
                let _ = respond_json(&mut **conn, status, &error_body(&message), false);
                return;
            }
        };
        let close = request.wants_close();
        let ok = if request.method == "POST" && request.path == "/detect" {
            // Wire the cancel token to a disconnect watcher before the
            // detection starts, so a client hang-up aborts the compute.
            let token = CancelToken::new();
            let watch = DisconnectWatch::spawn(&**conn, token.clone());
            let (status, body) = handlers::detect(store, &request.body, token);
            if let Ok(watch) = watch {
                reader.push_back(&watch.finish());
            }
            respond_chunked_json(&mut **conn, status, &body).is_ok()
        } else {
            let (status, body) = handlers::handle(store, config, &request);
            respond_json(&mut **conn, status, &body, !close).is_ok()
        };
        if !ok || close {
            return;
        }
    }
}
