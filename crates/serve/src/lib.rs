// The workspace-wide no-unsafe rule, with one audited exception: the
// `signals` feature compiles `src/signal.rs`, which declares the C
// `signal(2)` entry point for graceful-shutdown capture (DESIGN.md §16).
// `forbid` cannot be lifted even by that one module, so the feature swaps
// it for `deny`, which `signal.rs` alone is allowed to lift; every other
// module stays unsafe-free under both lints, and `parcom-audit` flags any
// unsafe outside the allowlisted file.
#![cfg_attr(not(feature = "signals"), forbid(unsafe_code))]
#![cfg_attr(feature = "signals", deny(unsafe_code))]
#![warn(missing_docs)]

//! # parcom-serve — the resident clustering daemon
//!
//! Loading a corpus graph dominates end-to-end latency for every CLI run:
//! parsing PGPgiantcompo takes longer than clustering it. This crate keeps
//! graphs *resident* — parsed once into CSR, held in memory under a name —
//! and answers detection requests against them over a hand-rolled HTTP/1.1
//! API (TCP and/or Unix domain socket; no external dependencies, the build
//! environment is offline).
//!
//! The request surface (DESIGN.md §13):
//!
//! * `PUT /graphs/{name}` — budgeted ingest (header admission *before*
//!   allocation) from a server-side path or inline METIS content.
//! * `POST /detect` — any registered algorithm via
//!   [`DetectorSpec`](parcom_core::DetectorSpec), run under a per-request
//!   [`Budget`]: deadline, sweep cap, and cancellation the moment the
//!   client disconnects (a watcher thread peeks the socket while the
//!   detection runs). The response streams back chunked JSON embedding the
//!   full `parcom-run-report/v2`.
//! * `POST /graphs/{name}/edges` — buffered edge inserts/removes with
//!   periodic CSR rebuild ([`store::REBUILD_BATCH`]); detection snapshots
//!   always flush first, so results reflect every acknowledged edit.
//!
//! With `--state-dir` the daemon is **crash-safe** (DESIGN.md §16): every
//! accepted batch is appended to a per-graph write-ahead log ([`wal`])
//! before it is acknowledged, graphs are periodically checkpointed to
//! `.pcg` snapshots ([`persist`]), and boot-time recovery replays the log
//! tail against the last checkpoint — bit-identical to having applied
//! every batch synchronously. Overload and lifecycle are governed by the
//! admission [`gate`]: bounded detect concurrency (`429`), bounded
//! per-graph mutation queues (`429`), `503` until recovery completes and
//! while draining for shutdown, `GET /healthz` / `GET /readyz` probes.
//!
//! Threading model: one acceptor per listener, one thread per connection,
//! plus one short-lived watcher thread per in-flight detection. The store
//! itself is two-level locked (map lock for lookup, per-entry mutex for
//! mutation) so a rebuild of one graph never blocks requests to another.

pub mod conn;
pub mod gate;
pub mod http;
pub mod persist;
pub mod store;
pub mod wal;

pub mod handlers;

#[cfg(feature = "signals")]
pub mod signal;

use conn::{Conn, DisconnectWatch};
use gate::Gate;
use http::{error_body, respond_chunked_json, respond_json, ReadError, RequestReader};
use parcom_guard::{Budget, CancelToken};
use persist::Durability;
use std::io;
use std::net::TcpListener;
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use wal::FsyncPolicy;

use store::GraphStore;

/// Idle keep-alive timeout between requests on one connection.
const KEEP_ALIVE: Duration = Duration::from_secs(60);

/// Default cap on concurrent detections. Detections are internally
/// parallel; more than a few running at once thrash the same cores, so
/// excess requests are shed with `429` instead of queued.
pub const DEFAULT_MAX_DETECTS: usize = 4;

/// How long a graceful shutdown waits for in-flight requests to finish
/// before flushing and exiting anyway.
#[cfg(feature = "signals")]
const DRAIN_TIMEOUT: Duration = Duration::from_secs(5);

/// Daemon configuration: where to listen, how much graph to admit, and
/// whether (and how durably) to persist state.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Unix-domain socket path to listen on (removed and re-bound at
    /// startup if it exists).
    pub socket: Option<PathBuf>,
    /// TCP address to listen on, e.g. `127.0.0.1:7071`.
    pub addr: Option<String>,
    /// Ingest admission cap on node count (`usize::MAX` = unlimited).
    pub max_nodes: usize,
    /// Ingest admission cap on edge count (`usize::MAX` = unlimited).
    pub max_edges: usize,
    /// State directory for WALs and checkpoints; `None` runs volatile.
    pub state_dir: Option<PathBuf>,
    /// When WAL appends reach stable storage (only meaningful with a
    /// state dir).
    pub fsync: FsyncPolicy,
    /// Cap on concurrent detections (`0` = unlimited).
    pub max_detects: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            socket: None,
            addr: None,
            max_nodes: usize::MAX,
            max_edges: usize::MAX,
            state_dir: None,
            fsync: FsyncPolicy::Always,
            max_detects: DEFAULT_MAX_DETECTS,
        }
    }
}

impl ServeConfig {
    /// The ingest admission budget: input limits only, checked against the
    /// METIS header before any allocation happens.
    pub fn ingest_budget(&self) -> Budget {
        if self.max_nodes == usize::MAX && self.max_edges == usize::MAX {
            Budget::unlimited()
        } else {
            Budget::unlimited().with_input_limits(self.max_nodes, self.max_edges)
        }
    }
}

/// Everything a request handler can reach: the store, the configuration,
/// the admission gate, and (with `--state-dir`) the durability layer.
pub struct ServerCtx {
    /// The resident graph registry.
    pub store: Arc<GraphStore>,
    /// The daemon configuration.
    pub config: ServeConfig,
    /// Admission gate: readiness, draining, concurrency caps.
    pub gate: Arc<Gate>,
    /// WAL + checkpoint layer; `None` without `--state-dir`.
    pub durability: Option<Arc<Durability>>,
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

/// A bound (but not yet serving) daemon.
pub struct Server {
    ctx: Arc<ServerCtx>,
    listeners: Vec<Listener>,
}

impl Server {
    /// Binds every listener named by `config` and opens the state
    /// directory when one is configured. At least one of `socket` / `addr`
    /// must be set. A stale socket file from a previous run is removed
    /// before binding. Recovery does *not* run here — it runs (in the
    /// background) inside [`Server::run`], and the gate answers `503`
    /// until it completes.
    pub fn bind(config: ServeConfig) -> io::Result<Self> {
        let mut listeners = Vec::new();
        if let Some(addr) = &config.addr {
            listeners.push(Listener::Tcp(TcpListener::bind(addr.as_str())?));
        }
        #[cfg(unix)]
        if let Some(path) = &config.socket {
            if path.exists() {
                std::fs::remove_file(path)?;
            }
            listeners.push(Listener::Unix(UnixListener::bind(path)?));
        }
        #[cfg(not(unix))]
        if config.socket.is_some() {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            ));
        }
        if listeners.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "serve needs a socket path or a TCP address to listen on",
            ));
        }
        let durability = match &config.state_dir {
            Some(dir) => Some(Arc::new(Durability::open(dir, config.fsync)?)),
            None => None,
        };
        let gate = Arc::new(Gate::new(config.max_detects));
        Ok(Self {
            ctx: Arc::new(ServerCtx {
                store: Arc::new(GraphStore::new()),
                config,
                gate,
                durability,
            }),
            listeners,
        })
    }

    /// The shared store — exposed so embedders (tests, benches) can
    /// pre-load graphs without going through the API.
    pub fn store(&self) -> Arc<GraphStore> {
        Arc::clone(&self.ctx.store)
    }

    /// The shared request context.
    pub fn ctx(&self) -> Arc<ServerCtx> {
        Arc::clone(&self.ctx)
    }

    /// The first bound TCP address, when listening on TCP — lets callers
    /// bind port 0 and discover the ephemeral port.
    pub fn local_tcp_addr(&self) -> Option<std::net::SocketAddr> {
        self.listeners.iter().find_map(|l| match l {
            Listener::Tcp(t) => t.local_addr().ok(),
            #[cfg(unix)]
            Listener::Unix(_) => None,
        })
    }

    /// Serves forever: accepts on every bound listener, one thread per
    /// connection, with recovery running in the background until the gate
    /// turns ready. Only returns if *all* accept loops fail.
    pub fn run(self) -> io::Result<()> {
        let Server { ctx, listeners } = self;

        // Recovery runs concurrently with accepting: probes get answered
        // immediately (`/readyz` is 503 until the store is rebuilt), and
        // the moment recovery finishes the gate flips and requests flow.
        // Without a state dir there is nothing to recover — turn ready
        // before the first accept so no request can ever see a 503.
        if ctx.durability.is_some() {
            let ctx = Arc::clone(&ctx);
            std::thread::Builder::new()
                .name("parcom-serve-recover".into())
                .spawn(move || {
                    if let Some(durability) = &ctx.durability {
                        let started = std::time::Instant::now();
                        match durability.recover(&ctx.store) {
                            Ok(report) => eprintln!(
                                "parcom-serve: recovered {} graph(s), {} record(s) replayed \
                                 ({} warm, {} torn, {} fallback) in {:.1} ms",
                                report.graphs,
                                report.records_replayed,
                                report.warm,
                                report.torn_tails,
                                report.fallbacks,
                                started.elapsed().as_secs_f64() * 1e3
                            ),
                            Err(e) => eprintln!("parcom-serve: recovery failed: {e}"),
                        }
                    }
                    ctx.gate.set_ready();
                })?;
        } else {
            ctx.gate.set_ready();
        }

        #[cfg(feature = "signals")]
        {
            signal::install();
            let ctx = Arc::clone(&ctx);
            std::thread::Builder::new()
                .name("parcom-serve-shutdown".into())
                .spawn(move || loop {
                    if signal::requested() {
                        shutdown(&ctx);
                    }
                    std::thread::sleep(Duration::from_millis(50));
                })?;
        }

        let mut handles = Vec::new();
        for listener in listeners {
            let ctx = Arc::clone(&ctx);
            handles.push(
                std::thread::Builder::new()
                    .name("parcom-serve-accept".into())
                    .spawn(move || match listener {
                        // request/response turnarounds are small writes; Nagle
                        // + delayed-ACK stalls would add tens of ms per request
                        Listener::Tcp(l) => accept_loop(
                            l.incoming().map(|s| {
                                s.inspect(|s| {
                                    let _ = s.set_nodelay(true);
                                })
                            }),
                            ctx,
                        ),
                        #[cfg(unix)]
                        Listener::Unix(l) => accept_loop(l.incoming(), ctx),
                    })?,
            );
        }
        for handle in handles {
            let _ = handle.join();
        }
        Ok(())
    }
}

/// The graceful-shutdown sequence (SIGTERM/SIGINT, DESIGN.md §16): stop
/// admitting, drain in-flight requests (bounded by [`DRAIN_TIMEOUT`]),
/// flush every WAL, checkpoint every dirty graph, exit.
#[cfg(feature = "signals")]
fn shutdown(ctx: &ServerCtx) -> ! {
    eprintln!("parcom-serve: shutdown requested, draining");
    ctx.gate.start_drain();
    let deadline = std::time::Instant::now() + DRAIN_TIMEOUT;
    while ctx.gate.inflight() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    if let Some(durability) = &ctx.durability {
        let done = durability.checkpoint_all(&ctx.store);
        eprintln!("parcom-serve: flushed WALs, checkpointed {done} graph(s)");
    }
    if let Some(path) = &ctx.config.socket {
        let _ = std::fs::remove_file(path);
    }
    std::process::exit(0);
}

fn accept_loop<S, I>(incoming: I, ctx: Arc<ServerCtx>)
where
    S: Conn + 'static,
    I: Iterator<Item = io::Result<S>>,
{
    for stream in incoming {
        let Ok(stream) = stream else { continue };
        let ctx = Arc::clone(&ctx);
        let _ = std::thread::Builder::new()
            .name("parcom-serve-conn".into())
            .spawn(move || {
                let mut boxed: Box<dyn Conn> = Box::new(stream);
                serve_connection(&mut boxed, &ctx);
            });
    }
}

/// Runs the keep-alive request loop of one connection until the client
/// closes, asks to close, or errors.
fn serve_connection(conn: &mut Box<dyn Conn>, ctx: &ServerCtx) {
    let mut reader = RequestReader::new();
    loop {
        if conn.set_read_timeout_conn(Some(KEEP_ALIVE)).is_err() {
            return;
        }
        let request = match reader.read_request(&mut **conn) {
            Ok(request) => request,
            Err(ReadError::Closed) | Err(ReadError::Io(_)) => return,
            Err(ReadError::Bad(status, message)) => {
                let _ = respond_json(&mut **conn, status, &error_body(&message), false);
                return;
            }
        };
        let close = request.wants_close();

        // Health probes bypass admission entirely; everything else is
        // refused while recovery runs or a drain is in progress.
        let probe =
            request.method == "GET" && matches!(request.path.as_str(), "/healthz" | "/readyz");
        let _permit = if probe {
            None
        } else {
            if !ctx.gate.is_ready() {
                let ok = respond_json(
                    &mut **conn,
                    503,
                    &error_body("recovery in progress; retry shortly"),
                    !close,
                )
                .is_ok();
                if !ok || close {
                    return;
                }
                continue;
            }
            match ctx.gate.enter_request() {
                Some(permit) => Some(permit),
                None => {
                    let _ = respond_json(
                        &mut **conn,
                        503,
                        &error_body("daemon is draining for shutdown"),
                        false,
                    );
                    return;
                }
            }
        };

        let ok = if request.method == "POST" && request.path == "/detect" {
            match ctx.gate.enter_detect() {
                None => {
                    let body = error_body(&format!(
                        "detect concurrency cap ({}) reached; retry shortly",
                        ctx.gate.max_detects()
                    ));
                    respond_json(&mut **conn, 429, &body, !close).is_ok()
                }
                Some(_detect_permit) => {
                    // Wire the cancel token to a disconnect watcher before
                    // the detection starts, so a client hang-up aborts the
                    // compute.
                    let token = CancelToken::new();
                    let watch = DisconnectWatch::spawn(&**conn, token.clone());
                    let (status, body) = handlers::detect(&ctx.store, &request.body, token);
                    if let Ok(watch) = watch {
                        reader.push_back(&watch.finish());
                    }
                    respond_chunked_json(&mut **conn, status, &body).is_ok()
                }
            }
        } else {
            let (status, body) = handlers::handle(ctx, &request);
            respond_json(&mut **conn, status, &body, !close).is_ok()
        };
        if !ok || close {
            return;
        }
    }
}
