//! Crash-test harness for the durability kill matrix.
//!
//! Boots a durable daemon from environment variables (so the integration
//! test can spawn it as a real OS process via `CARGO_BIN_EXE_*`), arms an
//! optional fault site, and — crucially — converts any panic into
//! `process::abort()`. An armed fault therefore kills the process at the
//! exact instruction boundary of the faultpoint with no unwinding, no
//! destructors, and no buffered-write flushing: the closest a test can
//! get to `kill -9` at a chosen line of code.
//!
//! Environment:
//!
//! * `PARCOM_HARNESS_SOCKET`     — Unix socket path to listen on (required)
//! * `PARCOM_HARNESS_STATE_DIR`  — durable state directory (required)
//! * `PARCOM_HARNESS_FSYNC`      — `always` (default) or `never`
//! * `PARCOM_FAULT`              — `site:k`, panic at the k-th crossing
//!   (1-based); requires the `fault-inject` feature, ignored without it.

use parcom_serve::wal::FsyncPolicy;
use parcom_serve::{ServeConfig, Server};
use std::path::PathBuf;

fn required(name: &str) -> String {
    std::env::var(name).unwrap_or_else(|_| panic!("{name} must be set"))
}

fn main() {
    // A panic anywhere — injected fault or genuine bug — must look like a
    // power cut, not a tidy exit. Abort without unwinding.
    std::panic::set_hook(Box::new(|info| {
        eprintln!("crash_harness aborting on panic: {info}");
        std::process::abort();
    }));

    if let Ok(spec) = std::env::var("PARCOM_FAULT") {
        arm_fault(&spec);
    }

    let fsync = match std::env::var("PARCOM_HARNESS_FSYNC") {
        Ok(flag) => FsyncPolicy::from_flag(&flag).unwrap_or_else(|e| panic!("{e}")),
        Err(_) => FsyncPolicy::Always,
    };
    let config = ServeConfig {
        socket: Some(PathBuf::from(required("PARCOM_HARNESS_SOCKET"))),
        state_dir: Some(PathBuf::from(required("PARCOM_HARNESS_STATE_DIR"))),
        fsync,
        ..ServeConfig::default()
    };
    let server = Server::bind(config).expect("bind crash harness daemon");
    server.run().expect("crash harness accept loop failed");
}

#[cfg(feature = "fault-inject")]
fn arm_fault(spec: &str) {
    use parcom_guard::fault::{FaultAction, FaultPlan};
    let (site, k) = spec
        .split_once(':')
        .unwrap_or_else(|| panic!("PARCOM_FAULT must be `site:k`, got `{spec}`"));
    let k: u64 = k
        .parse()
        .unwrap_or_else(|_| panic!("bad fault count in `{spec}`"));
    FaultPlan::arm(site, k, FaultAction::Panic);
}

#[cfg(not(feature = "fault-inject"))]
fn arm_fault(spec: &str) {
    eprintln!("crash_harness built without fault-inject; ignoring PARCOM_FAULT={spec}");
}
