//! Transport abstraction: one trait over TCP and Unix-domain streams, plus
//! the disconnect watcher that turns a client hang-up into a
//! [`CancelToken`] cancellation (DESIGN.md §13).

use parcom_guard::CancelToken;
use std::io::{self, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// The poll interval of the disconnect watcher. A hang-up is noticed within
/// one interval, which bounds how much compute a cancelled request can
/// waste past the disconnect — and, because stopping the watcher means
/// waiting out its current read, also bounds the latency `finish` adds to
/// every served detection. Keep it small: one syscall per interval during
/// a detection is noise, a long join tax on every request is not.
const WATCH_INTERVAL: Duration = Duration::from_millis(10);

/// A bidirectional client connection — [`TcpStream`] or [`UnixStream`] —
/// with the two extras the server needs beyond `Read + Write`: cloning
/// (for the watcher thread) and read timeouts (so neither the watcher nor
/// the keep-alive loop blocks forever).
pub trait Conn: Read + Write + Send {
    /// An independently owned handle to the same underlying socket.
    fn try_clone_conn(&self) -> io::Result<Box<dyn Conn>>;

    /// Sets the socket read timeout. Note this is a property of the
    /// underlying socket, shared with every clone — callers that lower it
    /// must restore it.
    fn set_read_timeout_conn(&self, timeout: Option<Duration>) -> io::Result<()>;
}

impl Conn for TcpStream {
    fn try_clone_conn(&self) -> io::Result<Box<dyn Conn>> {
        Ok(Box::new(self.try_clone()?))
    }

    fn set_read_timeout_conn(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(timeout)
    }
}

#[cfg(unix)]
impl Conn for UnixStream {
    fn try_clone_conn(&self) -> io::Result<Box<dyn Conn>> {
        Ok(Box::new(self.try_clone()?))
    }

    fn set_read_timeout_conn(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(timeout)
    }
}

/// A running disconnect watcher: a thread that reads the connection with a
/// short timeout while a detection runs and cancels `token` the moment the
/// peer hangs up. `UnixStream` has no stable `peek`, so the watcher really
/// *reads*: any bytes a pipelining client sends during the detection are
/// captured and returned by [`finish`](Self::finish), and the caller
/// appends them back onto its request buffer.
pub struct DisconnectWatch {
    done: Arc<AtomicBool>,
    stolen: Arc<Mutex<Vec<u8>>>,
    handle: Option<JoinHandle<()>>,
}

impl DisconnectWatch {
    /// Spawns the watcher on a clone of `conn`. If the clone fails (fd
    /// exhaustion), the request still runs — just without hang-up
    /// cancellation — so the error is reported but not fatal.
    pub fn spawn(conn: &dyn Conn, token: CancelToken) -> io::Result<Self> {
        let peer = conn.try_clone_conn()?;
        let done = Arc::new(AtomicBool::new(false));
        let stolen = Arc::new(Mutex::new(Vec::new()));
        let thread_done = Arc::clone(&done);
        let thread_stolen = Arc::clone(&stolen);
        let handle = std::thread::Builder::new()
            .name("parcom-serve-watch".into())
            .spawn(move || watch(peer, token, thread_done, thread_stolen))?;
        Ok(Self {
            done,
            stolen,
            handle: Some(handle),
        })
    }

    /// Stops the watcher, waits for it to exit, and returns any bytes it
    /// consumed off the socket (the prefix of a pipelined next request),
    /// leaving the socket in blocking read mode.
    pub fn finish(mut self) -> Vec<u8> {
        self.stop();
        std::mem::take(&mut *self.stolen.lock().unwrap())
    }

    fn stop(&mut self) {
        // audit:allow(atomic-ordering): single-writer shutdown flag; Release
        // pairs with the watcher's Acquire load so the stolen-bytes buffer
        // is fully visible before the join returns
        self.done.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for DisconnectWatch {
    fn drop(&mut self) {
        self.stop();
    }
}

fn watch(
    mut peer: Box<dyn Conn>,
    token: CancelToken,
    done: Arc<AtomicBool>,
    stolen: Arc<Mutex<Vec<u8>>>,
) {
    if peer.set_read_timeout_conn(Some(WATCH_INTERVAL)).is_err() {
        return;
    }
    let mut probe = [0u8; 256];
    loop {
        // audit:allow(atomic-ordering): pairs with the Release store in stop()
        if done.load(Ordering::Acquire) {
            break;
        }
        match peer.read(&mut probe) {
            // EOF: the client closed its end — abandon the computation.
            Ok(0) => {
                token.cancel();
                break;
            }
            // The client pipelined its next request. It is still there —
            // keep the bytes for the request reader and stop watching.
            Ok(n) => {
                stolen.lock().unwrap().extend_from_slice(&probe[..n]);
                break;
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            // Any hard socket error also means nobody is listening.
            Err(_) => {
                token.cancel();
                break;
            }
        }
    }
    // Read timeouts are socket-wide (shared with the handler's handle), so
    // restore blocking mode for the keep-alive loop.
    let _ = peer.set_read_timeout_conn(None);
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::os::unix::net::UnixStream;

    #[test]
    fn watcher_cancels_on_hangup() {
        let (server, client) = UnixStream::pair().unwrap();
        let token = CancelToken::new();
        let watch = DisconnectWatch::spawn(&server, token.clone()).unwrap();
        drop(client);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !token.is_cancelled() {
            assert!(std::time::Instant::now() < deadline, "cancel never fired");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(watch.finish().is_empty());
    }

    #[test]
    fn watcher_returns_pipelined_bytes() {
        let (server, mut client) = UnixStream::pair().unwrap();
        let token = CancelToken::new();
        let watch = DisconnectWatch::spawn(&server, token.clone()).unwrap();
        client.write_all(b"GET /next HTTP/1.1\r\n").unwrap();
        // give the watcher time to observe the bytes, then stop it
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            assert!(std::time::Instant::now() < deadline, "bytes never seen");
            if !watch.stolen.lock().unwrap().is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let stolen = watch.finish();
        assert!(!token.is_cancelled());
        assert_eq!(&stolen, b"GET /next HTTP/1.1\r\n");
    }
}
