//! A minimal HTTP/1.1 server-side implementation: request parsing with hard
//! header/body limits, keep-alive, and plain or chunked JSON responses.
//!
//! Hand-rolled because the build environment is fully offline (no crates.io
//! access); the surface is exactly what the daemon's API needs and nothing
//! more — no TLS, no compression, no multipart.

use std::io::{self, Read, Write};

/// Hard cap on the request line + headers. A well-formed request to this
/// API fits in a few hundred bytes; anything larger is hostile or lost.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Hard cap on a request body. Inline METIS uploads are the largest
/// legitimate payload; 64 MiB covers every corpus graph the benchmarks use.
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// Stream chunk size for chunked responses: large partition arrays go out
/// in pieces instead of one giant write.
const CHUNK_BYTES: usize = 32 * 1024;

/// A parsed request. Header names are lowercased at parse time.
pub struct Request {
    /// `GET`, `POST`, `PUT`, `DELETE`, …
    pub method: String,
    /// The request target, without query-string splitting (the API uses
    /// none).
    pub path: String,
    headers: Vec<(String, String)>,
    /// The request body, already bounded by [`MAX_BODY_BYTES`].
    pub body: Vec<u8>,
}

impl Request {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange (HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read.
pub enum ReadError {
    /// The peer closed before sending a (complete) request; nothing to
    /// answer.
    Closed,
    /// Transport failure mid-request.
    Io(io::Error),
    /// A protocol violation to answer with this status and message, then
    /// close.
    Bad(u16, String),
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// A buffered request reader that survives pipelining: bytes read past the
/// end of one request are kept for the next.
pub struct RequestReader {
    buf: Vec<u8>,
}

impl Default for RequestReader {
    fn default() -> Self {
        Self::new()
    }
}

impl RequestReader {
    /// An empty reader.
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// Reads one full request (head + body) from `conn`. `Err(Closed)` is
    /// the clean end of a keep-alive connection.
    pub fn read_request(&mut self, conn: &mut dyn Read) -> Result<Request, ReadError> {
        let head_end = loop {
            if let Some(pos) = find_head_end(&self.buf) {
                break pos;
            }
            if self.buf.len() > MAX_HEAD_BYTES {
                return Err(ReadError::Bad(
                    431,
                    format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
                ));
            }
            if self.fill(conn)? == 0 {
                return Err(ReadError::Closed);
            }
        };
        if head_end > MAX_HEAD_BYTES {
            return Err(ReadError::Bad(
                431,
                format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
            ));
        }
        let head = std::str::from_utf8(&self.buf[..head_end])
            .map_err(|_| ReadError::Bad(400, "request head is not UTF-8".into()))?;
        let (method, path, headers) = parse_head(head)?;

        let body_len = match headers.iter().find(|(k, _)| k == "content-length") {
            Some((_, v)) => v
                .parse::<usize>()
                .map_err(|_| ReadError::Bad(400, format!("bad content-length `{v}`")))?,
            None => 0,
        };
        if body_len > MAX_BODY_BYTES {
            return Err(ReadError::Bad(
                413,
                format!("request body of {body_len} bytes exceeds {MAX_BODY_BYTES}"),
            ));
        }
        if headers.iter().any(|(k, _)| k == "transfer-encoding") {
            return Err(ReadError::Bad(
                400,
                "chunked request bodies are not supported; send content-length".into(),
            ));
        }

        let body_start = head_end + 4;
        while self.buf.len() < body_start + body_len {
            if self.fill(conn)? == 0 {
                return Err(ReadError::Bad(400, "connection closed mid-body".into()));
            }
        }
        let body = self.buf[body_start..body_start + body_len].to_vec();
        self.buf.drain(..body_start + body_len);
        Ok(Request {
            method,
            path,
            headers,
            body,
        })
    }

    /// Appends bytes that were consumed off the socket by someone else
    /// (the disconnect watcher) so the next parse sees them in order.
    pub fn push_back(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    fn fill(&mut self, conn: &mut dyn Read) -> io::Result<usize> {
        let mut chunk = [0u8; 4096];
        let n = conn.read(&mut chunk)?;
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(n)
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

type Head = (String, String, Vec<(String, String)>);

fn parse_head(head: &str) -> Result<Head, ReadError> {
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => {
            return Err(ReadError::Bad(
                400,
                format!("malformed request line `{request_line}`"),
            ))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ReadError::Bad(
            400,
            format!("unsupported version `{version}`"),
        ));
    }
    let mut headers = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Bad(400, format!("malformed header `{line}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok((method.to_string(), path.to_string(), headers))
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Shed responses (`429` overload, `503` not-ready/draining) carry a
/// `Retry-After` so well-behaved clients back off instead of hammering.
fn retry_after(status: u16) -> &'static str {
    match status {
        429 | 503 => "Retry-After: 1\r\n",
        _ => "",
    }
}

/// Writes a complete JSON response with `Content-Length`.
pub fn respond_json(
    w: &mut dyn Write,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{}Connection: {}\r\n\r\n",
        status_text(status),
        body.len(),
        retry_after(status),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

/// Writes a JSON response with `Transfer-Encoding: chunked`, streaming the
/// body in [`CHUNK_BYTES`] pieces — the response path of `/detect`, whose
/// reports and partition arrays can run to many megabytes.
pub fn respond_chunked_json(w: &mut dyn Write, status: u16, body: &str) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nTransfer-Encoding: chunked\r\n{}Connection: keep-alive\r\n\r\n",
        status_text(status),
        retry_after(status),
    )?;
    for chunk in body.as_bytes().chunks(CHUNK_BYTES) {
        write!(w, "{:x}\r\n", chunk.len())?;
        w.write_all(chunk)?;
        w.write_all(b"\r\n")?;
    }
    w.write_all(b"0\r\n\r\n")?;
    w.flush()
}

/// The canonical error body: `{"error":"…"}`.
pub fn error_body(message: &str) -> String {
    let mut out = String::with_capacity(message.len() + 12);
    out.push_str("{\"error\":");
    parcom_obs::json::write_str(&mut out, message);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_one(bytes: &[u8]) -> Result<Request, ReadError> {
        let mut cursor = io::Cursor::new(bytes.to_vec());
        RequestReader::new().read_request(&mut cursor)
    }

    #[test]
    fn parses_request_with_body() {
        let req = read_one(b"POST /detect HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd")
            .ok()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/detect");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"abcd");
        assert!(!req.wants_close());
    }

    #[test]
    fn keeps_pipelined_requests_apart() {
        let bytes = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n".to_vec();
        let mut cursor = io::Cursor::new(bytes);
        let mut reader = RequestReader::new();
        let a = reader.read_request(&mut cursor).ok().unwrap();
        let b = reader.read_request(&mut cursor).ok().unwrap();
        assert_eq!(a.path, "/a");
        assert_eq!(b.path, "/b");
        assert!(b.wants_close());
        assert!(matches!(
            reader.read_request(&mut cursor),
            Err(ReadError::Closed)
        ));
    }

    #[test]
    fn rejects_malformed_and_oversized() {
        assert!(matches!(
            read_one(b"NONSENSE\r\n\r\n"),
            Err(ReadError::Bad(400, _))
        ));
        assert!(matches!(
            read_one(b"GET /x HTTP/2\r\n\r\n"),
            Err(ReadError::Bad(400, _))
        ));
        let huge = format!("GET /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX);
        assert!(matches!(
            read_one(huge.as_bytes()),
            Err(ReadError::Bad(413, _)) | Err(ReadError::Bad(400, _))
        ));
        let long_head = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(MAX_HEAD_BYTES + 8));
        assert!(matches!(
            read_one(long_head.as_bytes()),
            Err(ReadError::Bad(431, _))
        ));
    }

    #[test]
    fn chunked_response_round_trips() {
        let mut out = Vec::new();
        let body = "z".repeat(100_000);
        respond_chunked_json(&mut out, 200, &body).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Transfer-Encoding: chunked"));
        // de-chunk and compare
        let payload = text.split("\r\n\r\n").nth(1).unwrap();
        let mut rest = payload;
        let mut decoded = String::new();
        while let Some((size_line, tail)) = rest.split_once("\r\n") {
            let size = usize::from_str_radix(size_line, 16).unwrap();
            if size == 0 {
                break;
            }
            decoded.push_str(&tail[..size]);
            rest = &tail[size + 2..];
        }
        assert_eq!(decoded, body);
    }
}
