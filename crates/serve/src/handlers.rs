//! Route handlers: the JSON API over the resident [`GraphStore`].
//!
//! | method | path                        | action                              |
//! |--------|-----------------------------|-------------------------------------|
//! | GET    | `/healthz`                  | liveness + resident-graph count     |
//! | GET    | `/readyz`                   | `200` once recovery is complete     |
//! | GET    | `/graphs`                   | list resident graphs                |
//! | PUT    | `/graphs/{name}`            | load a graph (by path or inline)    |
//! | DELETE | `/graphs/{name}`            | evict a graph                       |
//! | POST   | `/graphs/{name}/edges`      | WAL-append + buffer edge mutations  |
//! | POST   | `/graphs/{name}/checkpoint` | force a checkpoint era              |
//! | POST   | `/detect`                   | run a [`DetectorSpec`] under budget |
//!
//! Every handler returns `(status, body)`; the connection layer decides the
//! framing (plain for the small responses, chunked for `/detect`).

use crate::http::{error_body, Request};
use crate::persist::CHECKPOINT_OPS;
use crate::store::{lock_entry, EdgeOp, GraphStore, MAX_PENDING_OPS};
use crate::ServerCtx;
use parcom_core::DetectorSpec;
use parcom_graph::relabel::Relabeling;
use parcom_graph::Node;
use parcom_guard::{Budget, CancelToken, Termination};
use parcom_io::{load_graph_auto, read_metis_bytes_budgeted, GraphFormat};
use parcom_obs::json::{self, Value};
use parcom_obs::Recorder;
use std::time::Duration;

/// Schema tag of every non-detect response body.
pub const SCHEMA: &str = "parcom-serve/v1";

/// Schema tag of the `/detect` response body (which embeds a full
/// `parcom-run-report/v2` under `"report"`).
pub const DETECT_SCHEMA: &str = "parcom-serve-detect/v1";

/// A handler's verdict: HTTP status plus JSON body.
pub type Reply = (u16, String);

fn err(status: u16, message: impl AsRef<str>) -> Reply {
    (status, error_body(message.as_ref()))
}

/// Graph names are path segments and file-name material; keep them tame.
fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

/// Dispatches every route except `/detect` (which the connection layer
/// routes separately so it can wire up the disconnect watcher first).
pub fn handle(ctx: &ServerCtx, req: &Request) -> Reply {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => healthz(ctx),
        ("GET", ["readyz"]) => readyz(ctx),
        ("GET", ["graphs"]) => list_graphs(&ctx.store),
        ("PUT", ["graphs", name]) => load_graph(ctx, name, &req.body),
        ("DELETE", ["graphs", name]) => evict_graph(ctx, name),
        ("POST", ["graphs", name, "edges"]) => edge_batch(ctx, name, &req.body),
        ("POST", ["graphs", name, "checkpoint"]) => checkpoint_graph(ctx, name),
        ("POST", ["detect"]) => err(400, "POST /detect must go through the streaming path"),
        (_, ["healthz" | "readyz" | "graphs" | "detect", ..]) => err(405, "method not allowed"),
        _ => err(404, format!("no route for {} {}", req.method, req.path)),
    }
}

/// Liveness: always `200` while the process can answer at all, even
/// during recovery or drain — orchestration uses `/readyz` for routing.
fn healthz(ctx: &ServerCtx) -> Reply {
    let mut out = String::new();
    out.push_str("{\"schema\":");
    json::write_str(&mut out, SCHEMA);
    out.push_str(&format!(
        ",\"status\":\"ok\",\"graphs\":{},\"ready\":{},\"draining\":{},\"durable\":{}}}",
        ctx.store.len(),
        ctx.gate.is_ready(),
        ctx.gate.is_draining(),
        ctx.durability.is_some()
    ));
    (200, out)
}

/// Readiness: `200` once crash recovery has finished (and the daemon is
/// not draining), `503` otherwise — the gate the durability smoke test
/// and load balancers poll after a restart.
fn readyz(ctx: &ServerCtx) -> Reply {
    let ready = ctx.gate.is_ready() && !ctx.gate.is_draining();
    let mut out = String::new();
    out.push_str("{\"schema\":");
    json::write_str(&mut out, SCHEMA);
    out.push_str(&format!(
        ",\"ready\":{ready},\"draining\":{},\"graphs\":{}}}",
        ctx.gate.is_draining(),
        ctx.store.len()
    ));
    (if ready { 200 } else { 503 }, out)
}

fn list_graphs(store: &GraphStore) -> Reply {
    let mut out = String::new();
    out.push_str("{\"schema\":");
    json::write_str(&mut out, SCHEMA);
    out.push_str(",\"graphs\":[");
    for (i, (name, stats)) in store.list().into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        json::write_str(&mut out, &name);
        out.push_str(&format!(
            ",\"nodes\":{},\"edges\":{},\"pending\":{},\"generation\":{},\"rebuilds\":{},\"relabeled\":{},\"relabel_dropped\":{},\"seq\":{},\"durable\":{}}}",
            stats.nodes, stats.edges, stats.pending, stats.generation, stats.rebuilds,
            stats.relabeled, stats.relabel_dropped, stats.seq, stats.durable
        ));
    }
    out.push_str("]}");
    (200, out)
}

fn parse_body(body: &[u8]) -> Result<Value, Reply> {
    let text = std::str::from_utf8(body).map_err(|_| err(400, "body is not UTF-8"))?;
    json::parse(text).map_err(|e| err(400, format!("bad JSON body: {e}")))
}

fn load_graph(ctx: &ServerCtx, name: &str, body: &[u8]) -> Reply {
    if !valid_name(name) {
        return err(400, "graph names are 1-64 chars of [A-Za-z0-9._-]");
    }
    let v = match parse_body(body) {
        Ok(v) => v,
        Err(reply) => return reply,
    };
    // Header admission happens inside the budgeted readers, before the
    // graph is allocated — an oversized corpus is refused at a few bytes of
    // cost, not after filling memory.
    let budget = ctx.config.ingest_budget();
    let recorder = Recorder::enabled();
    let loaded = match (v.get("path"), v.get("content")) {
        (Some(path), None) => match path.as_str() {
            Some(path) => load_graph_auto(path, &recorder, &budget),
            None => return err(400, "\"path\" must be a string"),
        },
        (None, Some(content)) => match content.as_str() {
            Some(text) => read_metis_bytes_budgeted(text.as_bytes(), &budget).map(|graph| {
                parcom_io::LoadedGraph {
                    graph,
                    relabeling: None,
                    format: GraphFormat::Metis,
                }
            }),
            None => return err(400, "\"content\" must be a METIS string"),
        },
        _ => return err(400, "body must have exactly one of \"path\" or \"content\""),
    };
    let loaded = match loaded {
        Ok(l) => l,
        Err(e) => {
            let message = e.to_string();
            let status = if message.contains("exceed") { 413 } else { 422 };
            return err(status, format!("load failed: {message}"));
        }
    };
    // Ingest observability, surfaced to clients and asserted by CI's
    // serve-smoke: wall time across the ingest phases (`ingest/load` for
    // binary, `ingest/parse` + `ingest/build` for text) and bytes read.
    let report = recorder.finish("ingest");
    let load_ms: f64 = report.phases.iter().map(|p| p.wall_seconds).sum::<f64>() * 1e3;
    let load_bytes: u64 = report
        .phases
        .iter()
        .filter_map(|p| p.counter("bytes"))
        .sum();

    let (mut graph, mut relabeling) = (loaded.graph, loaded.relabeling);
    // Optional load-time relabel: `{"relabel": true}` reorders the resident
    // view hub-first (no-op when the file already stores a relabeled view).
    match v.get("relabel").map(Value::as_bool) {
        Some(Some(true)) => {
            if relabeling.is_none() {
                let r = Relabeling::degree_ordered(&graph);
                graph = r.apply(&graph);
                relabeling = Some(r);
            }
        }
        Some(Some(false)) | None => {}
        Some(None) => return err(400, "\"relabel\" must be a boolean"),
    }

    let (nodes, edges) = (graph.node_count(), graph.edge_count());
    let relabeled = relabeling.is_some();
    let format = loaded.format.as_str();
    // Durable mode persists the entry (checkpoint + fresh WAL) *before*
    // it becomes visible in the store, so no acknowledged graph can exist
    // in memory without its on-disk state set.
    let mut entry = crate::store::GraphEntry::new(graph, relabeling);
    let durable = if let Some(durability) = &ctx.durability {
        if let Err(e) = durability.persist_new(name, &mut entry) {
            return err(500, format!("could not persist `{name}`: {e}"));
        }
        true
    } else {
        false
    };
    let replaced = ctx.store.insert_entry(name, entry);
    let mut out = String::new();
    out.push_str("{\"schema\":");
    json::write_str(&mut out, SCHEMA);
    out.push_str(",\"name\":");
    json::write_str(&mut out, name);
    out.push_str(&format!(
        ",\"nodes\":{nodes},\"edges\":{edges},\"replaced\":{replaced},\"format\":\"{format}\",\"load_ms\":{load_ms:.3},\"load_bytes\":{load_bytes},\"relabeled\":{relabeled},\"durable\":{durable}}}"
    ));
    (if replaced { 200 } else { 201 }, out)
}

fn evict_graph(ctx: &ServerCtx, name: &str) -> Reply {
    if ctx.store.remove(name) {
        if let Some(durability) = &ctx.durability {
            if let Err(e) = durability.remove(name) {
                return err(
                    500,
                    format!("evicted `{name}` but state removal failed: {e}"),
                );
            }
        }
        (200, format!("{{\"schema\":\"{SCHEMA}\",\"evicted\":true}}"))
    } else {
        err(404, format!("no graph named `{name}`"))
    }
}

/// Forces a checkpoint era for one graph: folds the pending buffer,
/// snapshots to `.pcg`, truncates the WAL. `409` without `--state-dir`.
fn checkpoint_graph(ctx: &ServerCtx, name: &str) -> Reply {
    let Some(durability) = &ctx.durability else {
        return err(
            409,
            "daemon runs without --state-dir; nothing to checkpoint",
        );
    };
    let Some(entry) = ctx.store.get(name) else {
        return err(404, format!("no graph named `{name}`"));
    };
    let mut entry = lock_entry(&entry);
    if let Err(e) = durability.checkpoint(name, &mut entry) {
        return err(500, format!("checkpoint of `{name}` failed: {e}"));
    }
    let stats = entry.stats();
    drop(entry);
    let mut out = String::new();
    out.push_str("{\"schema\":");
    json::write_str(&mut out, SCHEMA);
    out.push_str(&format!(
        ",\"checkpointed\":true,\"seq\":{},\"generation\":{},\"nodes\":{},\"edges\":{},\"relabeled\":{},\"relabel_dropped\":{}}}",
        stats.seq, stats.generation, stats.nodes, stats.edges, stats.relabeled,
        stats.relabel_dropped
    ));
    (200, out)
}

fn node_id(v: &Value) -> Result<Node, Reply> {
    v.as_u64()
        .filter(|&id| id <= u32::MAX as u64)
        .map(|id| id as Node)
        .ok_or_else(|| err(400, "node ids must be integers in u32 range"))
}

/// Buffers a batch of edge mutations; within one request the `insert` array
/// applies before the `remove` array. The rebuild is deferred until the
/// buffer reaches [`crate::store::REBUILD_BATCH`] operations, the client
/// passes `"rebuild":true`, or the next detection snapshot flushes it.
///
/// Durable mode appends the batch to the graph's WAL (and, under
/// `--fsync always`, syncs it) *before* this function returns `200` — an
/// acknowledged batch survives `kill -9`. A batch that would push the
/// pending buffer past [`MAX_PENDING_OPS`] is shed with `429` instead of
/// queued unboundedly.
fn edge_batch(ctx: &ServerCtx, name: &str, body: &[u8]) -> Reply {
    let Some(entry) = ctx.store.get(name) else {
        return err(404, format!("no graph named `{name}`"));
    };
    let v = match parse_body(body) {
        Ok(v) => v,
        Err(reply) => return reply,
    };
    let mut ops: Vec<EdgeOp> = Vec::new();
    if let Some(inserts) = v.get("insert") {
        let Some(rows) = inserts.as_array() else {
            return err(400, "\"insert\" must be an array of [u, v] or [u, v, w]");
        };
        for row in rows {
            let Some(cells) = row.as_array() else {
                return err(400, "\"insert\" rows must be arrays");
            };
            let (u, v, w) = match cells {
                [u, v] => (u, v, 1.0),
                [u, v, w] => match w.as_f64().filter(|w| w.is_finite() && *w > 0.0) {
                    Some(w) => (u, v, w),
                    None => return err(400, "edge weights must be finite and positive"),
                },
                _ => return err(400, "\"insert\" rows must be [u, v] or [u, v, w]"),
            };
            match (node_id(u), node_id(v)) {
                (Ok(u), Ok(v)) => ops.push(EdgeOp::Insert(u, v, w)),
                (Err(reply), _) | (_, Err(reply)) => return reply,
            }
        }
    }
    if let Some(removes) = v.get("remove") {
        let Some(rows) = removes.as_array() else {
            return err(400, "\"remove\" must be an array of [u, v]");
        };
        for row in rows {
            let Some([u, v]) = row.as_array() else {
                return err(400, "\"remove\" rows must be [u, v]");
            };
            match (node_id(u), node_id(v)) {
                (Ok(u), Ok(v)) => ops.push(EdgeOp::Remove(u, v)),
                (Err(reply), _) | (_, Err(reply)) => return reply,
            }
        }
    }
    if ops.is_empty() {
        return err(400, "batch has no operations");
    }
    let force = v.get("rebuild").and_then(Value::as_bool).unwrap_or(false);
    let batch = ops.len();
    let mut entry = lock_entry(&entry);
    // Bounded admission: shed before the WAL append so a refused batch
    // leaves no trace anywhere.
    if entry.stats().pending + batch > MAX_PENDING_OPS {
        return err(
            429,
            format!(
                "mutation queue for `{name}` is full ({MAX_PENDING_OPS} ops); retry after a rebuild"
            ),
        );
    }
    // WAL-before-acknowledge: an error here means the batch is *not*
    // accepted (nothing was buffered) and the writer is wedged until the
    // next checkpoint installs a fresh log.
    if let Err(e) = entry.commit_ops(ops) {
        return err(500, format!("write-ahead log append failed: {e}"));
    }
    let rebuilt = force || entry.rebuild_due();
    if rebuilt {
        entry.rebuild();
    }
    // Automatic checkpoint cadence: once enough operations have been
    // acknowledged since the last era, fold and snapshot. Failure is not
    // fatal to the batch — the WAL still covers it — but is reported.
    let mut checkpointed = false;
    if let Some(durability) = &ctx.durability {
        if entry.ops_since_checkpoint() >= CHECKPOINT_OPS {
            match durability.checkpoint(name, &mut entry) {
                Ok(()) => checkpointed = true,
                Err(e) => eprintln!("parcom-serve: auto-checkpoint of `{name}` failed: {e}"),
            }
        }
    }
    let stats = entry.stats();
    drop(entry);
    let mut out = String::new();
    out.push_str("{\"schema\":");
    json::write_str(&mut out, SCHEMA);
    out.push_str(&format!(
        ",\"accepted\":{batch},\"rebuilt\":{rebuilt},\"pending\":{},\"generation\":{},\"nodes\":{},\"edges\":{},\"seq\":{},\"durable\":{},\"checkpointed\":{checkpointed},\"relabeled\":{},\"relabel_dropped\":{}}}",
        stats.pending, stats.generation, stats.nodes, stats.edges, stats.seq, stats.durable,
        stats.relabeled, stats.relabel_dropped
    ));
    (200, out)
}

/// Runs a detection request. `token` is already wired to the connection's
/// disconnect watcher, so a client hang-up cancels the run; the body's
/// `"budget"` adds a deadline and/or sweep cap on top.
///
/// Body: `{"graph": name, "spec": <string or object>, "budget":
/// {"timeout_ms", "max_sweeps"}, "include_partition": bool}`.
pub fn detect(store: &GraphStore, body: &[u8], token: CancelToken) -> Reply {
    let v = match parse_body(body) {
        Ok(v) => v,
        Err(reply) => return reply,
    };
    let Some(name) = v.get("graph").and_then(Value::as_str) else {
        return err(400, "body must name a resident \"graph\"");
    };
    let Some(spec_value) = v.get("spec") else {
        return err(400, "body must carry a \"spec\"");
    };
    let spec = match DetectorSpec::from_json(spec_value) {
        Ok(spec) => spec,
        Err(e) => return err(422, format!("bad spec: {e}")),
    };
    let mut detector = match spec.build() {
        Ok(d) => d,
        Err(e) => return err(422, format!("bad spec: {e}")),
    };

    let mut budget = Budget::unlimited().with_token(token);
    if let Some(b) = v.get("budget") {
        if b.entries().is_none() {
            return err(400, "\"budget\" must be an object");
        }
        match b.get("timeout_ms").map(|t| t.as_u64()) {
            Some(Some(ms)) => budget = budget.with_deadline(Duration::from_millis(ms)),
            Some(None) => return err(400, "\"timeout_ms\" must be a non-negative integer"),
            None => {}
        }
        match b.get("max_sweeps").map(|t| t.as_u64()) {
            Some(Some(cap)) => budget = budget.with_max_sweeps(cap),
            Some(None) => return err(400, "\"max_sweeps\" must be a non-negative integer"),
            None => {}
        }
    }
    let include_partition = v
        .get("include_partition")
        .and_then(Value::as_bool)
        .unwrap_or(false);

    let Some((graph, relabeling, generation)) = store.snapshot(name) else {
        return err(404, format!("no graph named `{name}`"));
    };
    let result = detector.detect_guarded(&graph, &budget);

    let mut out = String::with_capacity(1024);
    out.push_str("{\"schema\":");
    json::write_str(&mut out, DETECT_SCHEMA);
    out.push_str(",\"graph\":");
    json::write_str(&mut out, name);
    out.push_str(",\"spec\":");
    json::write_str(&mut out, &spec.to_string());
    out.push_str(&format!(
        ",\"generation\":{generation},\"nodes\":{},\"edges\":{},\"termination\":",
        graph.node_count(),
        graph.edge_count()
    ));
    json::write_str(&mut out, result.termination.as_str());
    out.push_str(&format!(
        ",\"communities\":{}",
        result.partition.number_of_subsets()
    ));
    // splice the already-serialized run report in as raw JSON
    out.push_str(",\"report\":");
    out.push_str(&result.report.to_json());
    if include_partition {
        // A relabeled resident view detects on permuted ids; clients sent
        // the graph in original ids, so the partition is mapped back
        // before emission (community ids and counts are unchanged).
        let emitted = match &relabeling {
            Some(r) => r.to_original(&result.partition),
            None => result.partition,
        };
        out.push_str(",\"partition\":[");
        for (i, &c) in emitted.as_slice().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&c.to_string());
        }
        out.push(']');
    }
    out.push('}');
    let status = if result.termination == Termination::InputRejected {
        413
    } else {
        200
    };
    (status, out)
}
