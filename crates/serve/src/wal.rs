//! The per-graph append-only write-ahead log (DESIGN.md §16).
//!
//! Every accepted edge batch becomes exactly one record, written (and,
//! under [`FsyncPolicy::Always`], fsynced) *before* the mutation is
//! acknowledged — so an acknowledged batch survives `kill -9` and is
//! replayed against the last checkpoint on the next boot. The format
//! follows the `binfmt` conventions: a PNG-style magic, an explicit
//! version, and the same [`checksum64`] the `.pcg` checkpoints use.
//!
//! ## Layout
//!
//! ```text
//! header (32 bytes):
//! [ 0.. 8]  magic  89 50 57 4c 0d 0a 1a 0a   ("\x89PWL\r\n\x1a\n")
//! [ 8..12]  version            u32 le        (this module reads 1)
//! [12..16]  reserved           u32 le        (0)
//! [16..24]  base sequence      u64 le        (checkpoint this log follows)
//! [24..32]  header checksum    u64 le        (checksum64 of bytes 0..24)
//!
//! record (one per accepted batch):
//! [ 0.. 4]  payload length     u32 le
//! [ 4..12]  sequence           u64 le        (base+1, base+2, … contiguous)
//! [12..20]  payload checksum   u64 le        (checksum64 of the payload)
//! [20.. ]   payload: op count u32 le, then per op
//!           tag u8 (1 insert / 2 remove), u u32 le, v u32 le,
//!           weight f64-bits u64 le (insert only)
//! ```
//!
//! Replay verifies magic, version, both checksums, and sequence
//! contiguity. A trailing record that is short, checksum-mismatched, or
//! out of sequence is a *torn tail* — the crash interrupted the append
//! before the acknowledgement, so the record was never promised to any
//! client — and replay stops there instead of failing ([`WalReplay::torn`]
//! reports it). Appends are fail-stop: once a write errors (or a fault
//! unwinds mid-record) the writer is *wedged* and refuses further
//! appends, because bytes after a torn record would be unreachable to
//! replay anyway.

use crate::store::EdgeOp;
use parcom_io::binfmt::checksum64;
use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// First eight bytes of every WAL file.
pub const WAL_MAGIC: [u8; 8] = *b"\x89PWL\r\n\x1a\n";
/// Format version this module writes and reads.
pub const WAL_VERSION: u32 = 1;
/// Schema identifier, for reports and docs.
pub const WAL_SCHEMA: &str = "parcom-serve-wal/v1";

/// Fixed header size.
const HEADER_LEN: usize = 32;
/// Per-record head: length + sequence + payload checksum.
const RECORD_HEAD: usize = 20;
/// Sanity cap on one record's payload — far above what the HTTP body cap
/// allows a single batch to produce, so a corrupt length field cannot
/// drive a huge allocation.
const MAX_RECORD_PAYLOAD: usize = 256 * 1024 * 1024;

const TAG_INSERT: u8 = 1;
const TAG_REMOVE: u8 = 2;

/// When the log is flushed to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every appended record (and every checkpoint file),
    /// before the batch is acknowledged: acknowledged writes survive power
    /// loss, at the cost of one device sync per batch. The default.
    Always,
    /// Never `fsync`; writes still reach the OS page cache, so they
    /// survive a process crash (`kill -9`) but not a host power cut.
    Never,
}

impl FsyncPolicy {
    /// Parses the `--fsync` flag value.
    pub fn from_flag(value: &str) -> Result<Self, String> {
        match value {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            other => Err(format!("unknown fsync policy `{other}` (always|never)")),
        }
    }

    /// Stable lowercase name, for reports and logs.
    pub fn as_str(self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Never => "never",
        }
    }
}

/// Largest batch a single record can carry without its `u32` length
/// fields overflowing (op count, and payload bytes at ≤17 bytes/op).
/// Far above the daemon's admission cap; [`WalWriter::append`] refuses
/// larger batches before writing anything.
pub const MAX_RECORD_OPS: usize = (u32::MAX as usize - 4) / 17;

fn encode_ops(ops: &[EdgeOp]) -> Vec<u8> {
    debug_assert!(ops.len() <= MAX_RECORD_OPS);
    let mut out = Vec::with_capacity(4 + ops.len() * 17);
    out.extend_from_slice(&(ops.len() as u32).to_le_bytes()); // audit:allow(lossy-cast): append() bounds batches to MAX_RECORD_OPS
    for op in ops {
        match *op {
            EdgeOp::Insert(u, v, w) => {
                out.push(TAG_INSERT);
                out.extend_from_slice(&u.to_le_bytes());
                out.extend_from_slice(&v.to_le_bytes());
                out.extend_from_slice(&w.to_bits().to_le_bytes());
            }
            EdgeOp::Remove(u, v) => {
                out.push(TAG_REMOVE);
                out.extend_from_slice(&u.to_le_bytes());
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
    }
    out
}

fn decode_ops(payload: &[u8]) -> Option<Vec<EdgeOp>> {
    let count = u32::from_le_bytes(payload.get(0..4)?.try_into().ok()?) as usize;
    let mut ops = Vec::with_capacity(count.min(1 << 20));
    let mut pos = 4;
    for _ in 0..count {
        let tag = *payload.get(pos)?;
        pos += 1;
        let u = u32::from_le_bytes(payload.get(pos..pos + 4)?.try_into().ok()?);
        let v = u32::from_le_bytes(payload.get(pos + 4..pos + 8)?.try_into().ok()?);
        pos += 8;
        match tag {
            TAG_INSERT => {
                let bits = u64::from_le_bytes(payload.get(pos..pos + 8)?.try_into().ok()?);
                pos += 8;
                ops.push(EdgeOp::Insert(u, v, f64::from_bits(bits)));
            }
            TAG_REMOVE => ops.push(EdgeOp::Remove(u, v)),
            _ => return None,
        }
    }
    // trailing bytes inside a checksummed payload are corruption
    if pos != payload.len() {
        return None;
    }
    Some(ops)
}

fn header_bytes(base_seq: u64) -> [u8; HEADER_LEN] {
    let mut head = [0u8; HEADER_LEN];
    head[0..8].copy_from_slice(&WAL_MAGIC);
    head[8..12].copy_from_slice(&WAL_VERSION.to_le_bytes());
    head[12..16].copy_from_slice(&0u32.to_le_bytes());
    head[16..24].copy_from_slice(&base_seq.to_le_bytes());
    let sum = checksum64(&head[0..24]);
    head[24..32].copy_from_slice(&sum.to_le_bytes());
    head
}

/// The append handle a [`crate::store::GraphEntry`] holds while durable.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    last_seq: u64,
    wedged: bool,
}

impl WalWriter {
    /// Creates (truncating) a fresh log whose records continue from
    /// `base_seq` — the WAL-seq of the checkpoint it follows. The header
    /// is flushed (per policy) before this returns, so an existing header
    /// can always be trusted.
    pub fn create(path: &Path, base_seq: u64, policy: FsyncPolicy) -> io::Result<Self> {
        let mut file = File::create(path)?;
        file.write_all(&header_bytes(base_seq))?;
        if policy == FsyncPolicy::Always {
            file.sync_data()?;
        }
        Ok(Self {
            file,
            path: path.to_path_buf(),
            policy,
            last_seq: base_seq,
            wedged: false,
        })
    }

    /// Reopens an intact log for appending after a clean replay —
    /// `last_seq` is the sequence of its final valid record. The file must
    /// not have a torn tail (replay reports that; torn logs are replaced
    /// by a fresh checkpoint era instead of reopened).
    pub fn append_to(path: &Path, last_seq: u64, policy: FsyncPolicy) -> io::Result<Self> {
        let file = std::fs::OpenOptions::new().append(true).open(path)?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            policy,
            last_seq,
            wedged: false,
        })
    }

    /// Appends one batch as one record and (per policy) fsyncs, returning
    /// the record's sequence number. Call *before* acknowledging the
    /// batch. Errors are fail-stop: after any failure the writer refuses
    /// further appends until the next checkpoint installs a fresh log.
    pub fn append(&mut self, ops: &[EdgeOp]) -> io::Result<u64> {
        if self.wedged {
            return Err(io::Error::other(format!(
                "write-ahead log {} is wedged by an earlier failed append; checkpoint to recover",
                self.path.display()
            )));
        }
        if ops.len() > MAX_RECORD_OPS {
            // Refused before any write: the record's u32 length fields
            // cannot represent the batch, and a truncated count would
            // corrupt the log shape. Not a wedge — nothing was written.
            return Err(io::Error::other(format!(
                "batch of {} operations exceeds the per-record limit of {MAX_RECORD_OPS}",
                ops.len()
            )));
        }
        let payload = encode_ops(ops);
        let seq = self.last_seq + 1;
        let mut record = Vec::with_capacity(RECORD_HEAD + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes()); // audit:allow(lossy-cast): bounded by the MAX_RECORD_OPS check above
        record.extend_from_slice(&seq.to_le_bytes());
        record.extend_from_slice(&checksum64(&payload).to_le_bytes());
        record.extend_from_slice(&payload);
        self.wedged = true;
        // The record goes out in two writes with the fault site between
        // them, so the abort-path tests exercise a genuinely torn tail
        // (record head on disk, payload missing).
        self.file.write_all(&record[..RECORD_HEAD])?;
        parcom_guard::faultpoint!("serve/wal-append");
        self.file.write_all(&record[RECORD_HEAD..])?;
        if self.policy == FsyncPolicy::Always {
            self.file.sync_data()?;
        }
        self.wedged = false;
        self.last_seq = seq;
        Ok(seq)
    }

    /// Flushes buffered file data to disk regardless of policy — the
    /// graceful-shutdown path.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    /// Sequence of the last successfully appended record (or the base
    /// sequence if none).
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// Whether an earlier append failed mid-record, wedging the writer.
    pub fn is_wedged(&self) -> bool {
        self.wedged
    }
}

/// The outcome of replaying one log file.
#[derive(Debug)]
pub struct WalReplay {
    /// Checkpoint sequence this log continues from.
    pub base_seq: u64,
    /// Valid records in order: contiguous sequences starting at
    /// `base_seq + 1`.
    pub records: Vec<(u64, Vec<EdgeOp>)>,
    /// Whether a torn/corrupt tail was discarded after the last valid
    /// record.
    pub torn: bool,
    /// Byte length of the valid prefix (header + intact records).
    pub valid_len: u64,
}

/// Reads and verifies a log file. A damaged *tail* is tolerated (see
/// module docs); a damaged *header* is not — headers are flushed before
/// any record is acknowledged, so a bad one means the file is not a log.
pub fn replay(path: &Path) -> io::Result<WalReplay> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < HEADER_LEN || bytes[0..8] != WAL_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: not a {WAL_SCHEMA} log (bad magic)", path.display()),
        ));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != WAL_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: unsupported log version {version}", path.display()),
        ));
    }
    let stored = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
    if checksum64(&bytes[0..24]) != stored {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: log header checksum mismatch", path.display()),
        ));
    }
    let base_seq = u64::from_le_bytes(bytes[16..24].try_into().unwrap());

    let mut records = Vec::new();
    let mut pos = HEADER_LEN;
    let mut expect = base_seq + 1;
    let mut torn = false;
    while pos < bytes.len() {
        if pos + RECORD_HEAD > bytes.len() {
            torn = true;
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let seq = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
        let sum = u64::from_le_bytes(bytes[pos + 12..pos + 20].try_into().unwrap());
        let body = pos + RECORD_HEAD;
        if len > MAX_RECORD_PAYLOAD || body + len > bytes.len() {
            torn = true;
            break;
        }
        let payload = &bytes[body..body + len];
        if checksum64(payload) != sum || seq != expect {
            torn = true;
            break;
        }
        let Some(ops) = decode_ops(payload) else {
            torn = true;
            break;
        };
        records.push((seq, ops));
        expect += 1;
        pos = body + len;
    }
    Ok(WalReplay {
        base_seq,
        records,
        torn,
        valid_len: pos as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_wal(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("parcom-wal-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("g.wal")
    }

    fn ops_a() -> Vec<EdgeOp> {
        vec![EdgeOp::Insert(0, 1, 1.0), EdgeOp::Remove(2, 3)]
    }

    fn assert_ops_eq(a: &[EdgeOp], b: &[EdgeOp]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            match (x, y) {
                (EdgeOp::Insert(u1, v1, w1), EdgeOp::Insert(u2, v2, w2)) => {
                    assert_eq!((u1, v1), (u2, v2));
                    assert_eq!(w1.to_bits(), w2.to_bits());
                }
                (EdgeOp::Remove(u1, v1), EdgeOp::Remove(u2, v2)) => {
                    assert_eq!((u1, v1), (u2, v2));
                }
                _ => panic!("op kinds differ"),
            }
        }
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let path = temp_wal("roundtrip");
        let mut w = WalWriter::create(&path, 7, FsyncPolicy::Always).unwrap();
        assert_eq!(w.append(&ops_a()).unwrap(), 8);
        assert_eq!(w.append(&[EdgeOp::Insert(5, 6, 2.5)]).unwrap(), 9);
        let rep = replay(&path).unwrap();
        assert_eq!(rep.base_seq, 7);
        assert!(!rep.torn);
        assert_eq!(rep.records.len(), 2);
        assert_eq!(rep.records[0].0, 8);
        assert_ops_eq(&rep.records[0].1, &ops_a());
        assert_eq!(rep.valid_len, std::fs::metadata(&path).unwrap().len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = temp_wal("torn");
        let mut w = WalWriter::create(&path, 0, FsyncPolicy::Never).unwrap();
        w.append(&ops_a()).unwrap();
        let intact = std::fs::metadata(&path).unwrap().len();
        // a record head with no payload: exactly the shape a mid-append
        // crash leaves behind
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&9999u32.to_le_bytes());
        bytes.extend_from_slice(&2u64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let rep = replay(&path).unwrap();
        assert!(rep.torn);
        assert_eq!(rep.records.len(), 1);
        assert_eq!(rep.valid_len, intact);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_payload_stops_replay_at_the_last_valid_record() {
        let path = temp_wal("corrupt");
        let mut w = WalWriter::create(&path, 0, FsyncPolicy::Never).unwrap();
        w.append(&ops_a()).unwrap();
        w.append(&ops_a()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let rep = replay(&path).unwrap();
        assert!(rep.torn);
        assert_eq!(rep.records.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_header_is_an_error() {
        let path = temp_wal("header");
        std::fs::write(&path, b"not a log at all").unwrap();
        assert!(replay(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_to_continues_the_sequence() {
        let path = temp_wal("reopen");
        let mut w = WalWriter::create(&path, 0, FsyncPolicy::Never).unwrap();
        w.append(&ops_a()).unwrap();
        drop(w);
        let rep = replay(&path).unwrap();
        let mut w =
            WalWriter::append_to(&path, rep.records.last().unwrap().0, FsyncPolicy::Never).unwrap();
        assert_eq!(w.append(&ops_a()).unwrap(), 2);
        let rep = replay(&path).unwrap();
        assert!(!rep.torn);
        assert_eq!(rep.records.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn weight_bits_roundtrip_exactly() {
        let path = temp_wal("bits");
        let w0 = f64::from_bits(0x3ff0_0000_0000_0001); // 1.0 + 1 ulp
        let mut w = WalWriter::create(&path, 0, FsyncPolicy::Never).unwrap();
        w.append(&[EdgeOp::Insert(1, 2, w0)]).unwrap();
        let rep = replay(&path).unwrap();
        match rep.records[0].1[0] {
            EdgeOp::Insert(_, _, got) => assert_eq!(got.to_bits(), w0.to_bits()),
            _ => panic!("wrong op"),
        }
        std::fs::remove_file(&path).ok();
    }
}
