//! SIGTERM/SIGINT capture for graceful shutdown (the `signals` feature).
//!
//! Dependency-free (no `libc` crate in the offline build): the module
//! declares the C `signal` entry point itself and installs a handler that
//! does the only thing an async-signal-safe handler may do here — set a
//! flag. The daemon's shutdown watcher polls [`requested`] and runs the
//! actual drain/flush/checkpoint sequence on a normal thread.
//!
//! This is the workspace's second audited `unsafe` module (after
//! `parcom-io/src/mmap.rs`); the crate root swaps `forbid(unsafe_code)`
//! for `deny` under this feature so the lifts below stay reviewable, and
//! `parcom-audit` allowlists exactly this file.

use std::sync::atomic::{AtomicBool, Ordering};

static REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
const SIGINT: i32 = 2;
#[cfg(unix)]
const SIGTERM: i32 = 15;

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    // Async-signal-safe: one relaxed store, no allocation, no locks. The
    // watcher thread re-reads the flag; no data is published through it.
    REQUESTED.store(true, Ordering::Relaxed); // audit:allow(atomic-ordering)
}

#[cfg(unix)]
extern "C" {
    // ISO C `signal(2)`. `usize` stands in for the handler pointer on both
    // sides; the kernel only ever calls it as `extern "C" fn(i32)`.
    fn signal(signum: i32, handler: usize) -> usize;
}

/// Installs the termination handler for `SIGTERM` and `SIGINT`. Idempotent;
/// a no-op on non-Unix platforms.
pub fn install() {
    #[cfg(unix)]
    // SAFETY: `signal` is the ISO C entry point with the documented
    // signature; the handler passed is a valid `extern "C" fn(i32)` for
    // the life of the process and touches only an atomic flag.
    #[allow(unsafe_code)]
    unsafe {
        signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
    }
}

/// Whether a termination signal has arrived since [`install`].
pub fn requested() -> bool {
    REQUESTED.load(Ordering::Relaxed) // audit:allow(atomic-ordering)
}

/// Test hook: simulates a received signal without raising one.
pub fn request_now() {
    REQUESTED.store(true, Ordering::Relaxed); // audit:allow(atomic-ordering)
}
