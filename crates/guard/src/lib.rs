//! Run budgets, cooperative cancellation and deterministic fault injection.
//!
//! The crate sits next to `parcom-obs` at the bottom of the workspace and is
//! deliberately dependency-free. It provides three things:
//!
//! * [`Budget`] — a wall-clock deadline, a sweep cap, optional input
//!   admission limits, and a cooperative [`CancelToken`], checked by the
//!   detectors at *sweep/level/ensemble-member* granularity. A check is one
//!   relaxed atomic load plus (when a deadline is set) one `Instant`
//!   comparison, so hot loops test it once per sweep or once per N
//!   coarsening merges — never per edge (see DESIGN.md §11).
//! * [`Termination`] — how a guarded run ended. Anything other than
//!   [`Termination::Converged`] means the run was cut short and degraded
//!   gracefully to the best valid partition found so far.
//! * [`faultpoint!`] — a named fault-injection site, compiled to nothing
//!   unless the `fault-inject` feature is on, in which case a seeded
//!   [`fault::FaultPlan`] can make the K-th crossing of a site cancel a
//!   token or panic, deterministically. Tests use this to prove every
//!   abort path releases pooled scratch, poisons no mutex, and still
//!   yields a well-formed result.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub mod fault;

/// Why a guarded run stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Termination {
    /// The algorithm ran to its natural end (convergence or its own
    /// internal iteration caps). The result is exactly what an unguarded
    /// run would have produced.
    Converged,
    /// The budget's sweep cap was reached.
    IterationCap,
    /// The wall-clock deadline passed.
    Deadline,
    /// The [`CancelToken`] was fired from another thread.
    Cancelled,
    /// The input failed budget admission (node/edge limits) before any
    /// work was attempted.
    InputRejected,
}

impl Termination {
    /// Stable kebab-case name, used in run reports and CLI JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Termination::Converged => "converged",
            Termination::IterationCap => "iteration-cap",
            Termination::Deadline => "deadline",
            Termination::Cancelled => "cancelled",
            Termination::InputRejected => "input-rejected",
        }
    }

    /// Whether the run was cut short (anything but [`Termination::Converged`]).
    pub fn interrupted(self) -> bool {
        self != Termination::Converged
    }
}

impl std::fmt::Display for Termination {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A clonable cooperative cancellation handle: one shared `AtomicBool`.
/// Cloning is cheap (an `Arc` bump); firing any clone cancels them all.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-fired token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fires the token. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether the token has been fired.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// A run budget: deadline, sweep cap, input admission limits and a cancel
/// token. Shared across threads by reference (`&Budget`); the sweep counter
/// is atomic so ensemble members may call [`check_sweep`](Budget::check_sweep)
/// concurrently.
#[derive(Debug)]
pub struct Budget {
    deadline: Option<Instant>,
    max_sweeps: Option<u64>,
    max_nodes: Option<usize>,
    max_edges: Option<usize>,
    sweeps: AtomicU64,
    token: CancelToken,
}

impl Default for Budget {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl Budget {
    /// A budget that never expires: every check passes, [`admits`](Budget::admits)
    /// accepts any input. `detect_guarded` under an unlimited budget is an
    /// unguarded run plus one relaxed load per sweep.
    pub fn unlimited() -> Self {
        Self {
            deadline: None,
            max_sweeps: None,
            max_nodes: None,
            max_edges: None,
            sweeps: AtomicU64::new(0),
            token: CancelToken::new(),
        }
    }

    /// Sets a wall-clock deadline `timeout` from now.
    pub fn with_deadline(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Sets an absolute deadline.
    pub fn with_deadline_at(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Caps the total number of sweeps (label-propagation iterations, move
    /// sweeps, merge batches...) counted across the whole run via
    /// [`check_sweep`](Budget::check_sweep).
    pub fn with_max_sweeps(mut self, cap: u64) -> Self {
        self.max_sweeps = Some(cap);
        self
    }

    /// Attaches an externally created cancel token (e.g. one wired to a
    /// signal handler or fired from another thread).
    pub fn with_token(mut self, token: CancelToken) -> Self {
        self.token = token;
        self
    }

    /// Sets input admission limits checked by [`admits`](Budget::admits).
    pub fn with_input_limits(mut self, max_nodes: usize, max_edges: usize) -> Self {
        self.max_nodes = Some(max_nodes);
        self.max_edges = Some(max_edges);
        self
    }

    /// A clone of the budget's cancel token, for handing to another thread.
    pub fn token(&self) -> CancelToken {
        self.token.clone()
    }

    /// The absolute deadline, if one is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Sweeps recorded so far via [`check_sweep`](Budget::check_sweep).
    pub fn sweeps_used(&self) -> u64 {
        self.sweeps.load(Ordering::Relaxed)
    }

    /// The cheap cooperative check: has the token fired, has the deadline
    /// passed? Call at sweep/level/member boundaries or every N merges —
    /// never per edge. `Err` carries the cause.
    #[inline]
    pub fn check(&self) -> Result<(), Termination> {
        if self.token.is_cancelled() {
            return Err(Termination::Cancelled);
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Err(Termination::Deadline);
            }
        }
        Ok(())
    }

    /// [`check`](Budget::check) plus one sweep consumed from the cap. The
    /// counter is shared across threads and hierarchy levels, so a PLM
    /// recursion or an EPP ensemble draws from one pool.
    #[inline]
    pub fn check_sweep(&self) -> Result<(), Termination> {
        let used = self.sweeps.fetch_add(1, Ordering::Relaxed);
        if let Some(cap) = self.max_sweeps {
            if used >= cap {
                return Err(Termination::IterationCap);
            }
        }
        self.check()
    }

    /// Input admission: reject a graph whose claimed size exceeds the
    /// configured limits *before* anything is allocated for it.
    pub fn admits(&self, nodes: usize, edges: usize) -> Result<(), Termination> {
        if let Some(cap) = self.max_nodes {
            if nodes > cap {
                return Err(Termination::InputRejected);
            }
        }
        if let Some(cap) = self.max_edges {
            if edges > cap {
                return Err(Termination::InputRejected);
            }
        }
        Ok(())
    }
}

/// Amortizes budget checks over fine-grained work: `tick()` returns `true`
/// once every `interval` calls, so a merge loop can run
/// `if pacer.tick() { budget.check()?; }` without paying an `Instant::now`
/// per element.
#[derive(Debug)]
pub struct Pacer {
    interval: u32,
    left: u32,
}

impl Pacer {
    /// A pacer firing every `interval` ticks (the first fire happens after
    /// `interval` calls). `interval` must be non-zero.
    pub fn new(interval: u32) -> Self {
        assert!(interval > 0, "pacer interval must be non-zero");
        Self {
            interval,
            left: interval,
        }
    }

    /// Counts one unit of work; `true` once per `interval` calls.
    #[inline]
    pub fn tick(&mut self) -> bool {
        self.left -= 1;
        if self.left == 0 {
            self.left = self.interval;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_always_passes() {
        let b = Budget::unlimited();
        for _ in 0..1000 {
            assert_eq!(b.check(), Ok(()));
            assert_eq!(b.check_sweep(), Ok(()));
        }
        assert_eq!(b.admits(usize::MAX, usize::MAX), Ok(()));
        assert_eq!(b.sweeps_used(), 1000);
    }

    #[test]
    fn expired_deadline_fails_check() {
        let b = Budget::unlimited().with_deadline(Duration::ZERO);
        assert_eq!(b.check(), Err(Termination::Deadline));
        assert_eq!(b.check_sweep(), Err(Termination::Deadline));
    }

    #[test]
    fn future_deadline_passes() {
        let b = Budget::unlimited().with_deadline(Duration::from_secs(3600));
        assert_eq!(b.check(), Ok(()));
    }

    #[test]
    fn sweep_cap_trips_after_cap_sweeps() {
        let b = Budget::unlimited().with_max_sweeps(3);
        assert_eq!(b.check_sweep(), Ok(()));
        assert_eq!(b.check_sweep(), Ok(()));
        assert_eq!(b.check_sweep(), Ok(()));
        assert_eq!(b.check_sweep(), Err(Termination::IterationCap));
        // plain check() is unaffected by the sweep cap
        assert_eq!(b.check(), Ok(()));
    }

    #[test]
    fn cancel_token_fires_across_clones() {
        let token = CancelToken::new();
        let b = Budget::unlimited().with_token(token.clone());
        assert_eq!(b.check(), Ok(()));
        let remote = b.token();
        let handle = std::thread::spawn(move || remote.cancel());
        handle.join().unwrap();
        assert!(token.is_cancelled());
        assert_eq!(b.check(), Err(Termination::Cancelled));
    }

    #[test]
    fn cancellation_beats_deadline() {
        let b = Budget::unlimited().with_deadline(Duration::ZERO);
        b.token().cancel();
        assert_eq!(b.check(), Err(Termination::Cancelled));
    }

    #[test]
    fn admission_limits() {
        let b = Budget::unlimited().with_input_limits(100, 1000);
        assert_eq!(b.admits(100, 1000), Ok(()));
        assert_eq!(b.admits(101, 0), Err(Termination::InputRejected));
        assert_eq!(b.admits(0, 1001), Err(Termination::InputRejected));
    }

    #[test]
    fn termination_names_are_stable() {
        assert_eq!(Termination::Converged.as_str(), "converged");
        assert_eq!(Termination::IterationCap.as_str(), "iteration-cap");
        assert_eq!(Termination::Deadline.as_str(), "deadline");
        assert_eq!(Termination::Cancelled.as_str(), "cancelled");
        assert_eq!(Termination::InputRejected.as_str(), "input-rejected");
        assert!(!Termination::Converged.interrupted());
        assert!(Termination::Deadline.interrupted());
    }

    #[test]
    fn pacer_fires_every_interval() {
        let mut p = Pacer::new(3);
        let fires: Vec<bool> = (0..7).map(|_| p.tick()).collect();
        assert_eq!(fires, [false, false, true, false, false, true, false]);
    }

    #[test]
    fn faultpoint_compiles_out_by_default() {
        // With fault-inject off this is a no-op; with it on, nothing is
        // armed so the site just counts. Either way: no panic.
        faultpoint!("guard/test-site");
    }
}
