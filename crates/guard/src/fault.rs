//! Deterministic fault injection behind the `fault-inject` feature.
//!
//! Crates plant named sites with [`faultpoint!`] at allocation-heavy and
//! I/O boundaries (builder CSR assembly, chunked parse, coarsening merge,
//! EPP member runs — the registry lives in DESIGN.md §11). In normal builds
//! a site compiles to an empty inline function. Under `fault-inject`, a
//! global [`FaultPlan`] counts crossings per site and can be armed to fire
//! at the K-th crossing of a site, either cancelling a [`CancelToken`] (the
//! cooperative abort path) or panicking (the worst-case unwind path). K can
//! be derived from a seed so a whole test matrix stays deterministic.
//!
//! The plan is process-global; tests that arm it must serialize on
//! [`serial_guard`].

#[cfg(feature = "fault-inject")]
pub use enabled::{serial_guard, FaultAction, FaultPlan};

/// Marks a named fault-injection site. Zero-cost unless the `fault-inject`
/// feature of `parcom-guard` is enabled (the feature gate lives *inside*
/// the guard crate, so callers need no `cfg` of their own).
#[macro_export]
macro_rules! faultpoint {
    ($site:expr) => {
        $crate::fault::crossing($site)
    };
}

/// The no-op crossing used in normal builds.
#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub fn crossing(_site: &str) {}

/// The counting/firing crossing used under `fault-inject`.
#[cfg(feature = "fault-inject")]
pub fn crossing(site: &str) {
    enabled::crossing(site);
}

#[cfg(feature = "fault-inject")]
mod enabled {
    use crate::CancelToken;
    use std::collections::HashMap;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// What an armed site does when it fires.
    #[derive(Clone, Debug)]
    pub enum FaultAction {
        /// Fire this token: the run should degrade gracefully and report
        /// [`crate::Termination::Cancelled`].
        Cancel(CancelToken),
        /// Panic at the site: tests wrap the run in `catch_unwind` and
        /// assert nothing is left poisoned or leaked.
        Panic,
    }

    #[derive(Debug, Default)]
    struct SiteState {
        crossings: u64,
        /// Fire when `crossings` reaches this value (1-based).
        fire_at: Option<u64>,
        action: Option<FaultAction>,
    }

    fn plan() -> &'static Mutex<HashMap<String, SiteState>> {
        static PLAN: OnceLock<Mutex<HashMap<String, SiteState>>> = OnceLock::new();
        PLAN.get_or_init(|| Mutex::new(HashMap::new()))
    }

    fn lock() -> MutexGuard<'static, HashMap<String, SiteState>> {
        // Poison-tolerant: a panic injected *while* holding this lock is
        // impossible (actions run after release), but a panicking test
        // elsewhere must not wedge the whole harness.
        plan().lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(super) fn crossing(site: &str) {
        let action = {
            let mut map = lock();
            let st = map.entry(site.to_string()).or_default();
            st.crossings += 1;
            if st.fire_at == Some(st.crossings) {
                st.action.clone()
            } else {
                None
            }
        };
        // Act only after the plan lock is released, so a Panic action can
        // never poison the registry.
        match action {
            Some(FaultAction::Cancel(token)) => token.cancel(),
            Some(FaultAction::Panic) => panic!("fault injected at {site}"),
            None => {}
        }
    }

    /// The process-global fault plan: arm sites, inspect crossing counts,
    /// reset between tests.
    pub struct FaultPlan;

    impl FaultPlan {
        /// Arms `site` to fire `action` at its `k`-th crossing (1-based),
        /// counted from the last [`FaultPlan::clear`]. Re-arming replaces
        /// any previous arming and resets the site's crossing count.
        pub fn arm(site: &str, k: u64, action: FaultAction) {
            assert!(k >= 1, "fault K is 1-based");
            let mut map = lock();
            map.insert(
                site.to_string(),
                SiteState {
                    crossings: 0,
                    fire_at: Some(k),
                    action: Some(action),
                },
            );
        }

        /// Disarms everything and zeroes all crossing counts.
        pub fn clear() {
            lock().clear();
        }

        /// Crossings of `site` since the last clear/arm.
        pub fn crossings(site: &str) -> u64 {
            lock().get(site).map_or(0, |s| s.crossings)
        }

        /// Derives a deterministic 1-based K in `1..=max` from a seed and
        /// the site name (splitmix64 over the seed xor a site hash), so a
        /// seeded test matrix exercises varying crossings without
        /// hand-picking each K.
        pub fn derive_k(seed: u64, site: &str, max: u64) -> u64 {
            assert!(max >= 1);
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in site.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut z = seed ^ h;
            z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            1 + z % max
        }
    }

    /// Serializes tests that arm the global plan. Poison-tolerant, because
    /// panic-injection tests panic while holding it by design.
    pub fn serial_guard() -> MutexGuard<'static, ()> {
        static GATE: OnceLock<Mutex<()>> = OnceLock::new();
        GATE.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fires_cancel_at_kth_crossing() {
            let _g = serial_guard();
            FaultPlan::clear();
            let token = CancelToken::new();
            FaultPlan::arm("t/cancel", 3, FaultAction::Cancel(token.clone()));
            crate::faultpoint!("t/cancel");
            crate::faultpoint!("t/cancel");
            assert!(!token.is_cancelled());
            crate::faultpoint!("t/cancel");
            assert!(token.is_cancelled());
            assert_eq!(FaultPlan::crossings("t/cancel"), 3);
            FaultPlan::clear();
        }

        #[test]
        fn panic_action_does_not_poison_the_plan() {
            let _g = serial_guard();
            FaultPlan::clear();
            FaultPlan::arm("t/panic", 1, FaultAction::Panic);
            let r = std::panic::catch_unwind(|| crate::faultpoint!("t/panic"));
            assert!(r.is_err());
            // The registry is still usable afterwards.
            assert_eq!(FaultPlan::crossings("t/panic"), 1);
            FaultPlan::clear();
            crate::faultpoint!("t/panic");
            assert_eq!(FaultPlan::crossings("t/panic"), 1);
            FaultPlan::clear();
        }

        #[test]
        fn unarmed_sites_only_count() {
            let _g = serial_guard();
            FaultPlan::clear();
            for _ in 0..5 {
                crate::faultpoint!("t/counting");
            }
            assert_eq!(FaultPlan::crossings("t/counting"), 5);
            FaultPlan::clear();
        }

        #[test]
        fn derive_k_is_deterministic_and_in_range() {
            for seed in 0..50u64 {
                let k1 = FaultPlan::derive_k(seed, "io/chunk-parse", 7);
                let k2 = FaultPlan::derive_k(seed, "io/chunk-parse", 7);
                assert_eq!(k1, k2);
                assert!((1..=7).contains(&k1));
            }
            // different sites decorrelate
            let a = FaultPlan::derive_k(1, "a", 1_000_000);
            let b = FaultPlan::derive_k(1, "b", 1_000_000);
            assert_ne!(a, b);
        }
    }
}
