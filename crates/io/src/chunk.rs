//! Byte-level parsing substrate for the parallel readers.
//!
//! The chunked parsers ([`crate::metis`], [`crate::edgelist`]) read the
//! whole file into one buffer, split it on line boundaries into roughly
//! per-core chunks, and parse each chunk independently with zero per-line
//! allocation: lines and tokens are `&[u8]` sub-slices of the buffer, and
//! numbers parse straight from those slices. This module holds the shared
//! machinery — chunking, line iteration, token scanning, numeric parsing.
//!
//! Error context discipline: chunks know their absolute starting line
//! (computed with one cheap parallel newline count + prefix sum), so every
//! parse error still carries the exact 1-based line number and the
//! `path:line: msg` format is preserved bit-for-bit against the
//! sequential reference parsers.

use rayon::prelude::*;

/// Files smaller than this parse sequentially: chunk bookkeeping and
/// thread spawns would cost more than they save.
pub(crate) const MIN_PARALLEL_BYTES: usize = 1 << 16;

/// Picks the chunk count for an input buffer: one chunk (which parses
/// inline, no thread spawns) for small buffers or single-thread pools,
/// otherwise one chunk per pool thread.
pub(crate) fn auto_parts(len: usize) -> usize {
    let threads = rayon::current_num_threads().max(1);
    if len < MIN_PARALLEL_BYTES || threads == 1 {
        1
    } else {
        threads
    }
}

/// A byte range of the input that starts at a line boundary.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Chunk<'a> {
    /// The chunk's bytes; always begins at the start of a line.
    pub bytes: &'a [u8],
    /// 1-based line number of the chunk's first line.
    pub first_line: usize,
}

/// Splits `bytes` into at most `parts` chunks on line boundaries and
/// annotates each with its absolute first line number (`base_line` is the
/// 1-based number of the first line of `bytes`). Every byte lands in
/// exactly one chunk and concatenating the chunks in order reproduces the
/// input, so parsing chunk-by-chunk in order is equivalent to parsing the
/// whole buffer.
// audit:allow(budget-propagation): one linear split bounded by the input buffer; parse callers gate phases on the budget
pub(crate) fn chunk_lines(bytes: &[u8], parts: usize, base_line: usize) -> Vec<Chunk<'_>> {
    let parts = parts.max(1);
    let mut slices: Vec<&[u8]> = Vec::with_capacity(parts);
    let target = bytes.len().div_ceil(parts).max(1);
    let mut start = 0usize;
    while start < bytes.len() {
        let tentative = (start + target).min(bytes.len());
        // extend to the next newline so the cut lands on a line boundary
        let end = match bytes[tentative..].iter().position(|&b| b == b'\n') {
            Some(i) => tentative + i + 1,
            None => bytes.len(),
        };
        slices.push(&bytes[start..end]);
        start = end;
    }
    if slices.is_empty() {
        slices.push(&bytes[0..0]);
    }
    // Newline counts per chunk (parallel), prefix-summed into absolute
    // first-line numbers. A lone chunk starts at `base_line` by definition,
    // so the counting scan is skipped entirely.
    let newline_counts: Vec<usize> = if slices.len() == 1 {
        vec![0]
    } else {
        slices
            .par_iter()
            .map(|s| s.iter().filter(|&&b| b == b'\n').count())
            .collect()
    };
    let mut out = Vec::with_capacity(slices.len());
    let mut line = base_line;
    for (s, nl) in slices.into_iter().zip(newline_counts) {
        out.push(Chunk {
            bytes: s,
            first_line: line,
        });
        line += nl;
    }
    out
}

/// Iterator over the lines of a byte buffer, mirroring
/// `BufRead::lines`: terminators are stripped (`\n`, and a trailing `\r`
/// for CRLF files) and a final newline does not produce an empty
/// trailing line.
pub(crate) struct Lines<'a> {
    rest: Option<&'a [u8]>,
}

impl<'a> Iterator for Lines<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        let rest = self.rest.take()?;
        let (mut line, tail) = match rest.iter().position(|&b| b == b'\n') {
            Some(i) => (&rest[..i], &rest[i + 1..]),
            None => (rest, &rest[rest.len()..]),
        };
        if !tail.is_empty() {
            self.rest = Some(tail);
        }
        if line.last() == Some(&b'\r') {
            line = &line[..line.len() - 1];
        }
        Some(line)
    }
}

/// Lines of `bytes` (see [`Lines`]).
pub(crate) fn lines(bytes: &[u8]) -> Lines<'_> {
    Lines {
        rest: if bytes.is_empty() { None } else { Some(bytes) },
    }
}

/// Total number of lines in `bytes`, counting like [`lines`] iterates
/// (a trailing newline does not open a new line).
pub(crate) fn line_count(bytes: &[u8]) -> usize {
    if bytes.is_empty() {
        return 0;
    }
    let newlines = bytes.iter().filter(|&&b| b == b'\n').count();
    if bytes.last() == Some(&b'\n') {
        newlines
    } else {
        newlines + 1
    }
}

/// Iterator over the ASCII-whitespace-separated tokens of a line.
pub(crate) struct Tokens<'a> {
    rest: &'a [u8],
}

impl<'a> Iterator for Tokens<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        let start = self.rest.iter().position(|b| !b.is_ascii_whitespace())?;
        let rest = &self.rest[start..];
        let end = rest
            .iter()
            .position(|b| b.is_ascii_whitespace())
            .unwrap_or(rest.len());
        self.rest = &rest[end..];
        Some(&rest[..end])
    }
}

/// Tokens of `line` (see [`Tokens`]).
pub(crate) fn tokens(line: &[u8]) -> Tokens<'_> {
    Tokens { rest: line }
}

/// Parses an unsigned decimal integer (optionally `+`-prefixed, like
/// `str::parse`) without allocating. `None` on empty, non-digit, or
/// overflowing input.
pub(crate) fn parse_u64(tok: &[u8]) -> Option<u64> {
    let digits = match tok.first() {
        Some(b'+') => &tok[1..],
        _ => tok,
    };
    if digits.is_empty() {
        return None;
    }
    if digits.len() <= 18 {
        // up to 18 digits cannot overflow a u64: skip the checked ops in
        // the hot path (every METIS/edgelist token lands here)
        let mut acc: u64 = 0;
        for &b in digits {
            let d = b.wrapping_sub(b'0');
            if d > 9 {
                return None;
            }
            acc = acc * 10 + d as u64;
        }
        return Some(acc);
    }
    let mut acc: u64 = 0;
    for &b in digits {
        let d = b.wrapping_sub(b'0');
        if d > 9 {
            return None;
        }
        acc = acc.checked_mul(10)?.checked_add(d as u64)?;
    }
    Some(acc)
}

/// [`parse_u64`] narrowed to `usize`.
pub(crate) fn parse_usize(tok: &[u8]) -> Option<usize> {
    parse_u64(tok)?.try_into().ok()
}

/// Parses an `f64` from a byte token (UTF-8 check on the short token,
/// then `str::parse` — no heap allocation).
pub(crate) fn parse_f64(tok: &[u8]) -> Option<f64> {
    std::str::from_utf8(tok).ok()?.parse().ok()
}

/// Of the per-chunk parse results, the error from the earliest chunk (=
/// earliest line, since chunks are in line order) or the concatenation
/// basis: returns `Ok(values)` in chunk order, or the first `Err`.
pub(crate) fn first_error<T, E>(results: Vec<Result<T, E>>) -> Result<Vec<T>, E> {
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        out.push(r?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_match_bufread_semantics() {
        let cases: [(&[u8], Vec<&[u8]>); 6] = [
            (b"", vec![]),
            (b"a", vec![b"a"]),
            (b"a\n", vec![b"a"]),
            (b"a\n\nb", vec![b"a", b"", b"b"]),
            (b"a\r\nb\n", vec![b"a", b"b"]),
            (b"\n\n", vec![b"", b""]),
        ];
        for (input, expect) in cases {
            let got: Vec<&[u8]> = lines(input).collect();
            assert_eq!(got, expect, "input {input:?}");
            assert_eq!(line_count(input), expect.len(), "count for {input:?}");
        }
    }

    #[test]
    fn tokens_split_on_ascii_whitespace() {
        let got: Vec<&[u8]> = tokens(b"  12\t 3.5  x ").collect();
        assert_eq!(got, vec![&b"12"[..], b"3.5", b"x"]);
        assert_eq!(tokens(b"   ").count(), 0);
        assert_eq!(tokens(b"").count(), 0);
    }

    #[test]
    fn chunks_tile_the_input_and_number_lines() {
        let text = b"one\ntwo\nthree\nfour\nfive\nsix\n";
        for parts in [1usize, 2, 3, 5, 20] {
            let chunks = chunk_lines(text, parts, 1);
            let glued: Vec<u8> = chunks
                .iter()
                .flat_map(|c| c.bytes.iter().copied())
                .collect();
            assert_eq!(glued, text.to_vec());
            // every chunk starts at a line boundary with the right number
            let mut all_lines = Vec::new();
            for c in &chunks {
                for (lineno, l) in (c.first_line..).zip(lines(c.bytes)) {
                    all_lines.push((lineno, l.to_vec()));
                }
            }
            let expect: Vec<(usize, Vec<u8>)> = lines(text)
                .enumerate()
                .map(|(i, l)| (i + 1, l.to_vec()))
                .collect();
            assert_eq!(all_lines, expect, "parts={parts}");
        }
    }

    #[test]
    fn chunking_handles_missing_trailing_newline() {
        let text = b"a\nb\nc";
        let chunks = chunk_lines(text, 2, 5);
        let glued: Vec<u8> = chunks
            .iter()
            .flat_map(|c| c.bytes.iter().copied())
            .collect();
        assert_eq!(glued, text.to_vec());
        assert_eq!(chunks[0].first_line, 5);
    }

    #[test]
    fn numeric_parsers() {
        assert_eq!(parse_u64(b"0"), Some(0));
        assert_eq!(parse_u64(b"+42"), Some(42));
        assert_eq!(parse_u64(b"18446744073709551615"), Some(u64::MAX));
        assert_eq!(parse_u64(b"18446744073709551616"), None);
        assert_eq!(parse_u64(b""), None);
        assert_eq!(parse_u64(b"-1"), None);
        assert_eq!(parse_u64(b"1x"), None);
        assert_eq!(parse_f64(b"2.5"), Some(2.5));
        assert_eq!(parse_f64(b"1e-3"), Some(1e-3));
        assert_eq!(parse_f64(b"nope"), None);
    }
}
