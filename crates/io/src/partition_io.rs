//! Partition files: one community id per line, line `i` holding ζ(i).
//! This is the format used by the DIMACS clustering tools.

use crate::{at_path, parse_error, IoError};
use parcom_graph::Partition;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Reads a partition from a reader.
pub fn read_partition_from(reader: impl Read) -> Result<Partition, IoError> {
    let reader = BufReader::new(reader);
    let mut data = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let c: u32 = t
            .parse()
            .map_err(|_| parse_error(i + 1, format!("bad community id `{t}`")))?;
        data.push(c);
    }
    Ok(Partition::from_vec(data))
}

/// Reads a partition from a file path. Errors carry the path (and line).
pub fn read_partition(path: impl AsRef<Path>) -> Result<Partition, IoError> {
    let path = path.as_ref();
    at_path(
        path,
        std::fs::File::open(path)
            .map_err(IoError::from)
            .and_then(read_partition_from),
    )
}

/// Writes a partition to a writer.
pub fn write_partition_to(p: &Partition, writer: impl Write) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    // audit:allow(lossy-cast): bounded by the u32 node id space
    for v in 0..p.len() as u32 {
        writeln!(w, "{}", p.subset_of(v))?;
    }
    Ok(())
}

/// Writes a partition to a file path. Errors carry the path.
pub fn write_partition(p: &Partition, path: impl AsRef<Path>) -> Result<(), IoError> {
    let path = path.as_ref();
    at_path(
        path,
        std::fs::File::create(path)
            .map_err(IoError::from)
            .and_then(|f| write_partition_to(p, f)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let p = Partition::from_vec(vec![0, 0, 2, 1, 2]);
        let mut buf = Vec::new();
        write_partition_to(&p, &mut buf).unwrap();
        let q = read_partition_from(buf.as_slice()).unwrap();
        assert_eq!(p.as_slice(), q.as_slice());
    }

    #[test]
    fn skips_comments() {
        let q = read_partition_from("# truth\n0\n1\n\n1\n".as_bytes()).unwrap();
        assert_eq!(q.as_slice(), &[0, 1, 1]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_partition_from("x\n".as_bytes()).is_err());
        assert!(read_partition_from("-1\n".as_bytes()).is_err());
    }

    #[test]
    fn empty_file_is_empty_partition() {
        let q = read_partition_from("".as_bytes()).unwrap();
        assert_eq!(q.len(), 0);
    }
}
