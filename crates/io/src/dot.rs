//! Graphviz DOT export of community graphs (the Fig. 11 pipeline).
//!
//! Nodes are drawn with area proportional to community size and edges with
//! pen width proportional to inter-community weight, mirroring the paper's
//! PGPgiantcompo renderings.

use crate::IoError;
use parcom_core::CommunityGraph;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Writes a community graph as Graphviz DOT to a writer.
pub fn write_community_graph_dot_to(
    cg: &CommunityGraph,
    name: &str,
    writer: impl Write,
) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "graph \"{name}\" {{")?;
    writeln!(w, "  layout=sfdp; overlap=false; outputorder=edgesfirst;")?;
    writeln!(
        w,
        "  node [shape=circle, style=filled, fillcolor=\"#4a90d9\", label=\"\"];"
    )?;
    let max_size = cg.max_community_size().max(1) as f64;
    for c in cg.graph.nodes() {
        let size = cg.sizes[c as usize] as f64;
        // node diameter scales with sqrt(size) so area tracks member count
        let width = 0.15 + 1.2 * (size / max_size).sqrt();
        writeln!(
            w,
            "  n{c} [width={width:.3}, tooltip=\"{} members\"];",
            size as usize
        )?;
    }
    let mut result = Ok(());
    cg.graph.for_edges(|u, v, wt| {
        if result.is_err() || u == v {
            return;
        }
        let pen = 0.3 + wt.ln_1p();
        result = writeln!(w, "  n{u} -- n{v} [penwidth={pen:.2}];");
    });
    result?;
    writeln!(w, "}}")?;
    Ok(())
}

/// Writes a community graph as DOT to a file path. Errors carry the path.
pub fn write_community_graph_dot(
    cg: &CommunityGraph,
    name: &str,
    path: impl AsRef<Path>,
) -> Result<(), IoError> {
    let path = path.as_ref();
    crate::at_path(
        path,
        std::fs::File::create(path)
            .map_err(IoError::from)
            .and_then(|f| write_community_graph_dot_to(cg, name, f)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcom_core::CommunityDetector;
    use parcom_generators::ring_of_cliques;

    #[test]
    fn emits_wellformed_dot() {
        let (g, truth) = ring_of_cliques(4, 5);
        let cg = CommunityGraph::build(&g, &truth);
        let mut buf = Vec::new();
        write_community_graph_dot_to(&cg, "ring", &mut buf).unwrap();
        let dot = String::from_utf8(buf).unwrap();
        assert!(dot.starts_with("graph \"ring\" {"));
        assert!(dot.trim_end().ends_with('}'));
        assert_eq!(dot.matches(" -- ").count(), 4); // ring edges, no loops
        assert_eq!(dot.matches("width=").count(), 4 + 4); // 4 nodes + 4 penwidths
    }

    #[test]
    fn scales_node_sizes() {
        let (g, _) = ring_of_cliques(2, 4);
        let p = parcom_graph::Partition::from_vec(vec![0, 0, 0, 0, 0, 0, 0, 1]);
        let cg = CommunityGraph::build(&g, &p);
        let mut buf = Vec::new();
        write_community_graph_dot_to(&cg, "skew", &mut buf).unwrap();
        let dot = String::from_utf8(buf).unwrap();
        // the big community gets the max width 1.35, the singleton much less
        assert!(dot.contains("width=1.350"));
    }

    #[test]
    fn works_with_detected_communities() {
        let (g, _) = ring_of_cliques(5, 4);
        let zeta = parcom_core::Plm::new().detect(&g);
        let cg = CommunityGraph::build(&g, &zeta);
        let mut buf = Vec::new();
        write_community_graph_dot_to(&cg, "plm", &mut buf).unwrap();
        assert!(!buf.is_empty());
    }
}
