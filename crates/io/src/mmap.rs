//! Read-only memory mapping for the binary graph reopen path.
//!
//! **This module is the only `unsafe` code in the workspace**, compiled
//! only under the `mmap` feature; the default build keeps
//! `#![forbid(unsafe_code)]` crate-wide (the crate root swaps `forbid`
//! for `deny` when the feature is on, since `forbid` cannot be scoped).
//! `parcom-audit`'s `unsafe-code` rule allowlists exactly this file, so
//! any unsafe appearing anywhere else still fails CI. DESIGN.md §15
//! records the confinement contract.
//!
//! The mapping is private and read-only (`PROT_READ | MAP_PRIVATE`), made
//! via the raw `mmap(2)`/`munmap(2)` symbols of the platform libc that
//! `std` already links — no external crate. A [`Mmap`] derefs to `&[u8]`,
//! so `binfmt` parses it exactly like an owned buffer; dropping it unmaps.
//!
//! Safety argument, in one place:
//! * the pointer comes from a successful `mmap` of exactly `len` bytes,
//!   checked against `MAP_FAILED`, so it is valid for `len` reads until
//!   `munmap`;
//! * `munmap` happens only in `Drop`, so no slice can outlive the mapping
//!   (the borrow checker ties every `&[u8]` to the `Mmap`'s lifetime);
//! * zero-length files never call `mmap` (it would fail with `EINVAL`);
//!   they deref to the canonical empty slice;
//! * the fd is closed after mapping, which POSIX permits (the mapping
//!   holds its own reference).
//!
//! A file truncated by another process while mapped can still fault reads
//! (`SIGBUS`) — inherent to `mmap` on every platform and accepted for the
//! daemon's restart path, which owns the files it reopens.

#![allow(unsafe_code)]

use std::fs::File;
use std::io;
use std::ops::Deref;
use std::os::unix::io::AsRawFd;
use std::path::Path;

#[allow(non_camel_case_types)]
type c_int = i32;

const PROT_READ: c_int = 1;
const MAP_PRIVATE: c_int = 2;

extern "C" {
    fn mmap(
        addr: *mut u8,
        len: usize,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: i64,
    ) -> *mut u8;
    fn munmap(addr: *mut u8, len: usize) -> c_int;
}

/// A read-only, private memory mapping of a whole file.
#[derive(Debug)]
pub struct Mmap {
    /// Null iff `len == 0` (empty files are never mapped).
    ptr: *mut u8,
    len: usize,
}

impl Mmap {
    /// Maps `path` read-only.
    pub fn map(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::open(path)?;
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file too large to map"))?;
        if len == 0 {
            return Ok(Self {
                ptr: std::ptr::null_mut(),
                len: 0,
            });
        }
        // SAFETY: requesting a fresh private read-only mapping of `len`
        // bytes backed by an open fd; no existing memory is affected
        // (`addr` is a hint of null, not MAP_FIXED). The result is checked
        // against MAP_FAILED before use.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self { ptr, len })
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: `ptr` is a live mapping of exactly `len` bytes (see
        // module docs); the returned slice cannot outlive `self`, and
        // `munmap` only runs in `Drop`.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        if self.len != 0 {
            // SAFETY: unmapping the exact region this struct mapped, once.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_file_contents() {
        let dir = std::env::temp_dir().join(format!("parcom-mmap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.bin");
        std::fs::write(&path, b"hello mapping").unwrap();
        let m = Mmap::map(&path).unwrap();
        assert_eq!(&m[..], b"hello mapping");
        drop(m);

        let empty = dir.join("empty.bin");
        std::fs::write(&empty, b"").unwrap();
        let m = Mmap::map(&empty).unwrap();
        assert!(m.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        assert!(Mmap::map("/nonexistent/parcom-mmap-test").is_err());
    }
}
