//! State-directory ("corpus") layout for the daemon's durability layer.
//!
//! `parcom serve --state-dir DIR` keeps, per resident graph `<name>`:
//!
//! ```text
//! <name>.pcg        current checkpoint (binfmt snapshot, WAL-seq tagged)
//! <name>.pcg.prev   previous checkpoint generation
//! <name>.wal        write-ahead log since the current checkpoint
//! <name>.wal.prev   log of the previous checkpoint era
//! <name>.pcg.tmp    checkpoint in flight (ignored by recovery)
//! <name>.wal.tmp    fresh log in flight (ignored by recovery)
//! ```
//!
//! Two generations are retained so a corrupt current checkpoint falls back
//! to the previous one plus the full log chain (`.wal.prev` then `.wal`);
//! see DESIGN.md §16 for the rotation protocol and its crash windows. This
//! module owns only the *layout* — naming, scanning, and the atomic-write
//! primitive — so the daemon and offline tooling agree on what a state
//! directory means.

use crate::IoError;
use std::fs::File;
use std::io;
use std::path::{Path, PathBuf};

/// The per-graph file set inside a state directory.
#[derive(Clone, Debug)]
pub struct StatePaths {
    /// Current checkpoint.
    pub pcg: PathBuf,
    /// Previous-generation checkpoint.
    pub pcg_prev: PathBuf,
    /// Checkpoint write staging file.
    pub pcg_tmp: PathBuf,
    /// Current write-ahead log.
    pub wal: PathBuf,
    /// Previous-era write-ahead log.
    pub wal_prev: PathBuf,
    /// Fresh-log staging file.
    pub wal_tmp: PathBuf,
}

impl StatePaths {
    /// Every path of the set, for removal loops.
    pub fn all(&self) -> [&Path; 6] {
        [
            &self.pcg,
            &self.pcg_prev,
            &self.pcg_tmp,
            &self.wal,
            &self.wal_prev,
            &self.wal_tmp,
        ]
    }
}

/// The file set of graph `name` under `dir`. Performs no I/O.
pub fn state_paths(dir: &Path, name: &str) -> StatePaths {
    StatePaths {
        pcg: dir.join(format!("{name}.pcg")),
        pcg_prev: dir.join(format!("{name}.pcg.prev")),
        pcg_tmp: dir.join(format!("{name}.pcg.tmp")),
        wal: dir.join(format!("{name}.wal")),
        wal_prev: dir.join(format!("{name}.wal.prev")),
        wal_tmp: dir.join(format!("{name}.wal.tmp")),
    }
}

/// One graph discovered in a state directory.
#[derive(Clone, Debug)]
pub struct CorpusEntry {
    /// The graph name (file stem with the state suffix stripped).
    pub name: String,
    /// Its full file set (any member may be absent on disk).
    pub paths: StatePaths,
}

/// Suffixes that mark a file as belonging to a graph's state set, longest
/// first so `x.pcg.prev` strips to `x`, not `x.pcg`. `.tmp` files count as
/// name evidence (a crash may leave *only* staging files) but recovery
/// ignores their contents.
const STATE_SUFFIXES: &[&str] = &[
    ".pcg.prev",
    ".pcg.tmp",
    ".wal.prev",
    ".wal.tmp",
    ".pcg",
    ".wal",
];

/// Scans a state directory and returns one entry per graph name found, in
/// sorted (deterministic) order. A name is listed if *any* member of its
/// file set exists — mid-rotation crash windows can leave a graph with only
/// a `.pcg.prev`, and recovery must still find it. Files that match no
/// state suffix are ignored, so a corpus directory tolerates stray files.
pub fn scan_corpus(dir: &Path) -> Result<Vec<CorpusEntry>, IoError> {
    let mut names: Vec<String> = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| IoError::from(e).with_path(dir))?;
    for entry in entries {
        let entry = entry.map_err(|e| IoError::from(e).with_path(dir))?;
        let file_name = entry.file_name();
        let Some(file_name) = file_name.to_str() else {
            continue;
        };
        if let Some(name) = strip_state_suffix(file_name) {
            if !name.is_empty() && !names.iter().any(|n| n == name) {
                names.push(name.to_string());
            }
        }
    }
    names.sort();
    Ok(names
        .into_iter()
        .map(|name| CorpusEntry {
            paths: state_paths(dir, &name),
            name,
        })
        .collect())
}

fn strip_state_suffix(file_name: &str) -> Option<&str> {
    STATE_SUFFIXES
        .iter()
        .find_map(|suffix| file_name.strip_suffix(suffix))
}

/// Writes `bytes` to `dst` atomically: staged at `tmp`, flushed (and
/// `fsync`ed when asked), then renamed over `dst`. A crash at any point
/// leaves either the old `dst` intact or a stale `tmp` that readers
/// ignore — never a half-written `dst`.
pub fn write_atomic(tmp: &Path, dst: &Path, bytes: &[u8], fsync: bool) -> io::Result<()> {
    {
        let mut file = File::create(tmp)?;
        io::Write::write_all(&mut file, bytes)?;
        if fsync {
            file.sync_data()?;
        }
    }
    std::fs::rename(tmp, dst)
}

/// Flushes directory metadata (the rename journal) to disk — the final
/// step of a durable rotation. Best-effort on platforms where directories
/// cannot be opened for sync.
pub fn fsync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("parcom-corpus-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn scan_finds_names_from_any_state_file() {
        let dir = temp_dir("scan");
        // A full set, a mid-rotation survivor, dotted names, and noise.
        std::fs::write(dir.join("alpha.pcg"), b"x").unwrap();
        std::fs::write(dir.join("alpha.wal"), b"x").unwrap();
        std::fs::write(dir.join("beta.pcg.prev"), b"x").unwrap();
        std::fs::write(dir.join("web.2026.pcg"), b"x").unwrap();
        std::fs::write(dir.join("README.txt"), b"x").unwrap();
        let entries = scan_corpus(&dir).unwrap();
        let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["alpha", "beta", "web.2026"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dotted_names_strip_the_longest_suffix() {
        assert_eq!(strip_state_suffix("a.b.pcg.prev"), Some("a.b"));
        assert_eq!(strip_state_suffix("a.pcg.tmp"), Some("a"));
        assert_eq!(strip_state_suffix("a.wal"), Some("a"));
        assert_eq!(strip_state_suffix("a.txt"), None);
    }

    #[test]
    fn write_atomic_replaces_without_partial_states() {
        let dir = temp_dir("atomic");
        let dst = dir.join("g.pcg");
        let tmp = dir.join("g.pcg.tmp");
        write_atomic(&tmp, &dst, b"first", true).unwrap();
        assert_eq!(std::fs::read(&dst).unwrap(), b"first");
        assert!(!tmp.exists());
        write_atomic(&tmp, &dst, b"second", false).unwrap();
        assert_eq!(std::fs::read(&dst).unwrap(), b"second");
        fsync_dir(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
