//! `parcom-graph-bin/v1` — the versioned binary graph format (`.pcg`).
//!
//! Text ingest (METIS, edge lists) pays a parse on every open; the binary
//! format is the resident daemon's restart path and the bench harness's
//! reopen path, so it stores exactly what [`parcom_graph::Graph`] holds in
//! memory — CSR arrays *plus* the derived caches (weighted degrees,
//! self-loop weights, totals) — and loading is a single contiguous read
//! followed by word-wise conversion into section-sliced buffers. No
//! tokenizing, no CSR assembly, no cache recomputation.
//!
//! ## Layout
//!
//! ```text
//! [ 0.. 8]  magic  89 50 43 47 0d 0a 1a 0a   ("\x89PCG\r\n\x1a\n")
//! [ 8..12]  version            u32 le        (this module reads 1)
//! [12..16]  section count      u32 le
//! [16..24]  flags              u64 le        (bit 0: graph is relabeled)
//! [24..32]  n  (nodes)         u64 le
//! [32..40]  m  (edges)         u64 le
//! [40..48]  adjacency length   u64 le        (Σ row lengths)
//! [48..56]  total edge weight  f64 le bits
//! [56..64]  body checksum      u64 le        (fold of per-section sums)
//! [64..64+24c]  section table: {id u32, reserved u32, offset u64, len u64}
//! [..+8]    header checksum    u64 le        (over all bytes before it)
//! then each section's payload, 8-byte aligned, zero-padded between
//! ```
//!
//! Sections (little-endian payloads): `1` row offsets `u64×(n+1)`, `2`
//! targets `u32×adj`, `3` edge weights `f64×adj` (omitted when every
//! weight is 1), `4` weighted degrees `f64×n`, `5` self-loop weights
//! `f64×n`, `6` relabeling permutation `u32×n` (`new_of_old`; present iff
//! flag bit 0 is set — see [`parcom_graph::relabel`]), `7` WAL sequence
//! `u64` (daemon checkpoints only: the last write-ahead-log record folded
//! into this snapshot, so recovery knows where replay resumes; absent in
//! files written by `parcom convert`). Unknown section ids are carried in
//! the table and checksummed but otherwise ignored, so readers of this
//! version skip sections a future writer might add.
//!
//! The magic follows the PNG convention: a high bit to catch 7-bit
//! transmission damage, `\r\n` to catch newline translation, `\x1a` to
//! stop accidental terminal dumps. Header claims are admitted against the
//! ingest [`Budget`] *before* any proportional allocation, mirroring the
//! METIS header admission; both checksums are verified before the graph is
//! handed to callers.

use crate::{at_path, IoError};
use parcom_graph::relabel::Relabeling;
use parcom_graph::{CsrParts, Graph, Node};
use parcom_guard::Budget;
use parcom_obs::Recorder;
use std::io::Write;
use std::path::Path;

/// First eight bytes of every `.pcg` file.
pub const MAGIC: [u8; 8] = *b"\x89PCG\r\n\x1a\n";
/// Format version this module writes and reads.
pub const VERSION: u32 = 1;
/// Schema identifier, for reports and docs.
pub const SCHEMA: &str = "parcom-graph-bin/v1";

/// Flag bit 0: the stored graph is a relabeled view; section 6 holds the
/// permutation mapping original ids to stored ids.
const FLAG_RELABELED: u64 = 1;

const SEC_OFFSETS: u32 = 1;
const SEC_TARGETS: u32 = 2;
const SEC_WEIGHTS: u32 = 3;
const SEC_WDEG: u32 = 4;
const SEC_SLOOP: u32 = 5;
const SEC_PERM: u32 = 6;
const SEC_WALSEQ: u32 = 7;

/// Size of the fixed header head, before the section table.
const HEAD_LEN: usize = 64;
/// Size of one section-table entry.
const ENTRY_LEN: usize = 24;
/// More sections than any v1 file can have — a corrupt count, whatever
/// the limits.
const MAX_SECTIONS: u32 = 64;

/// A graph loaded from the binary format, with the relabeling stored
/// alongside it (when the file was written from a relabeled graph).
#[derive(Debug)]
pub struct PcgGraph {
    /// The graph, in the file's (possibly relabeled) id space.
    pub graph: Graph,
    /// Permutation mapping original ids to the graph's ids, if any.
    pub relabeling: Option<Relabeling>,
    /// For daemon checkpoints: the last WAL sequence number folded into
    /// this snapshot (recovery replays records strictly after it). `None`
    /// for files written without a WAL context (e.g. `parcom convert`).
    pub wal_seq: Option<u64>,
}

/// True if `bytes` starts with the `.pcg` magic — the sniff
/// [`crate::load_graph_auto`] dispatches on.
pub fn is_pcg_magic(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

// ---------------------------------------------------------------------------
// Checksum: 4 independent multiply-xor lanes over 64-bit words. Lane
// independence keeps the multiply chains off the critical path (a single
// FNV-style chain caps out well below memory bandwidth); this is a
// corruption check, not a cryptographic hash.

const LANE_KEYS: [u64; 4] = [
    0x9e37_79b9_7f4a_7c15,
    0xc2b2_ae3d_27d4_eb4f,
    0x1656_67b1_9e37_79f9,
    0x27d4_eb2f_1656_67c5,
];

/// The format's corruption checksum, exported for the daemon's write-ahead
/// log so `.pcg` checkpoints and WAL records are verified by one reviewed
/// routine (DESIGN.md §16).
pub fn checksum64(bytes: &[u8]) -> u64 {
    checksum(bytes)
}

fn checksum(bytes: &[u8]) -> u64 {
    let mut lanes = LANE_KEYS;
    let chunks = bytes.chunks_exact(8);
    let rem = chunks.remainder();
    for (i, c) in chunks.enumerate() {
        let w = u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        let l = i & 3;
        lanes[l] = (lanes[l] ^ w).wrapping_mul(LANE_KEYS[l] | 1);
    }
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        lanes[0] = (lanes[0] ^ u64::from_le_bytes(tail)).wrapping_mul(LANE_KEYS[0] | 1);
    }
    let mut acc = bytes.len() as u64;
    for (j, l) in lanes.iter().enumerate() {
        acc = acc.rotate_left(13) ^ l.wrapping_mul(LANE_KEYS[j] | 1);
    }
    acc
}

/// Folds one section's checksum into the running body checksum; order
/// sensitive, so section payloads can't be swapped undetected.
fn fold_body(acc: u64, section_sum: u64) -> u64 {
    acc.rotate_left(17) ^ section_sum.wrapping_mul(LANE_KEYS[0] | 1)
}

// ---------------------------------------------------------------------------
// Little-endian slice conversions.

fn le_u64s(xs: &[usize]) -> Vec<u8> {
    let mut out = Vec::with_capacity(xs.len() * 8);
    for &x in xs {
        out.extend_from_slice(&(x as u64).to_le_bytes());
    }
    out
}

fn le_u32s(xs: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(xs.len() * 4);
    for &x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

fn le_f64s(xs: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(xs.len() * 8);
    for &x in xs {
        out.extend_from_slice(&x.to_bits().to_le_bytes());
    }
    out
}

fn from_le_u64s(bytes: &[u8]) -> Vec<usize> {
    bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]) as usize)
        .collect()
}

fn from_le_u32s(bytes: &[u8]) -> Vec<u32> {
    bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

fn from_le_f64s(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|c| {
            f64::from_bits(u64::from_le_bytes([
                c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7],
            ]))
        })
        .collect()
}

fn rd_u32(b: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([b[off], b[off + 1], b[off + 2], b[off + 3]])
}

fn rd_u64(b: &[u8], off: usize) -> u64 {
    u64::from_le_bytes([
        b[off],
        b[off + 1],
        b[off + 2],
        b[off + 3],
        b[off + 4],
        b[off + 5],
        b[off + 6],
        b[off + 7],
    ])
}

// ---------------------------------------------------------------------------
// Writing.

/// Serializes `g` (and its relabeling, if it is a relabeled view) in
/// `parcom-graph-bin/v1` form.
pub fn pcg_bytes(g: &Graph, relabeling: Option<&Relabeling>) -> Result<Vec<u8>, IoError> {
    pcg_bytes_with_wal_seq(g, relabeling, None)
}

/// [`pcg_bytes`] with a WAL sequence section — the daemon checkpoint
/// writer: `wal_seq` records the last log record this snapshot covers, so
/// recovery replays exactly the tail written after it.
pub fn pcg_bytes_with_wal_seq(
    g: &Graph,
    relabeling: Option<&Relabeling>,
    wal_seq: Option<u64>,
) -> Result<Vec<u8>, IoError> {
    let view = g.csr_view();
    let n = g.node_count();
    if let Some(r) = relabeling {
        if r.len() != n {
            return Err(IoError::parse(format!(
                "relabeling covers {} nodes, graph has {n}",
                r.len()
            )));
        }
    }
    let weighted = view.weights.iter().any(|&w| w != 1.0);

    let mut sections: Vec<(u32, Vec<u8>)> = Vec::with_capacity(6);
    sections.push((SEC_OFFSETS, le_u64s(view.offsets)));
    sections.push((SEC_TARGETS, le_u32s(view.targets)));
    if weighted {
        sections.push((SEC_WEIGHTS, le_f64s(view.weights)));
    }
    sections.push((SEC_WDEG, le_f64s(view.weighted_degrees)));
    sections.push((SEC_SLOOP, le_f64s(view.self_loops)));
    if let Some(r) = relabeling {
        sections.push((SEC_PERM, le_u32s(r.new_of_old())));
    }
    if let Some(seq) = wal_seq {
        sections.push((SEC_WALSEQ, seq.to_le_bytes().to_vec()));
    }

    let count = sections.len();
    let header_len = HEAD_LEN + ENTRY_LEN * count + 8;
    let mut flags = 0u64;
    if relabeling.is_some() {
        flags |= FLAG_RELABELED;
    }

    // Section layout and body checksum.
    let mut table = Vec::with_capacity(count);
    let mut cursor = header_len;
    let mut body_sum = 0u64;
    for (id, bytes) in &sections {
        table.push((*id, cursor as u64, bytes.len() as u64));
        body_sum = fold_body(body_sum, checksum(bytes));
        cursor += bytes.len().div_ceil(8) * 8;
    }

    let mut out = Vec::with_capacity(cursor);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(count as u32).to_le_bytes());
    out.extend_from_slice(&flags.to_le_bytes());
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.extend_from_slice(&(view.num_edges as u64).to_le_bytes());
    out.extend_from_slice(&(view.targets.len() as u64).to_le_bytes());
    out.extend_from_slice(&view.total_weight.to_bits().to_le_bytes());
    out.extend_from_slice(&body_sum.to_le_bytes());
    for (id, offset, len) in &table {
        out.extend_from_slice(&id.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        out.extend_from_slice(&offset.to_le_bytes());
        out.extend_from_slice(&len.to_le_bytes());
    }
    let header_sum = checksum(&out);
    out.extend_from_slice(&header_sum.to_le_bytes());
    debug_assert_eq!(out.len(), header_len);
    for (_, bytes) in &sections {
        out.extend_from_slice(bytes);
        out.resize(out.len().div_ceil(8) * 8, 0);
    }
    debug_assert_eq!(out.len(), cursor);
    Ok(out)
}

/// Writes `g` in binary form to a writer.
pub fn write_pcg_to(
    g: &Graph,
    relabeling: Option<&Relabeling>,
    mut writer: impl Write,
) -> Result<(), IoError> {
    let bytes = pcg_bytes(g, relabeling)?;
    writer.write_all(&bytes).map_err(IoError::from)
}

/// Writes `g` in binary form to `path` (conventionally `.pcg`).
pub fn write_pcg(
    g: &Graph,
    relabeling: Option<&Relabeling>,
    path: impl AsRef<Path>,
) -> Result<(), IoError> {
    let path = path.as_ref();
    at_path(path, {
        (|| {
            let file = std::fs::File::create(path).map_err(IoError::from)?;
            write_pcg_to(g, relabeling, std::io::BufWriter::new(file))
        })()
    })
}

// ---------------------------------------------------------------------------
// Reading.

struct SectionEntry {
    id: u32,
    offset: usize,
    len: usize,
}

/// Parses a `parcom-graph-bin/v1` image. Header claims are admitted
/// against `budget` before any allocation proportional to them; both
/// checksums are verified; the reassembled CSR passes the cheap structural
/// checks of [`Graph::from_cached_parts`] (full validation in debug /
/// `validate` builds).
pub fn read_pcg_bytes_budgeted(bytes: &[u8], budget: &Budget) -> Result<PcgGraph, IoError> {
    if bytes.len() < HEAD_LEN + 8 {
        return Err(IoError::parse(format!(
            "file truncated: {} bytes, shorter than the {}-byte fixed header",
            bytes.len(),
            HEAD_LEN + 8
        )));
    }
    if !is_pcg_magic(bytes) {
        return Err(IoError::parse(
            "not a parcom binary graph (bad magic)".to_string(),
        ));
    }
    let version = rd_u32(bytes, 8);
    if version != VERSION {
        return Err(IoError::parse(format!(
            "unsupported binary graph version {version} (this build reads {SCHEMA})"
        )));
    }
    let count = rd_u32(bytes, 12);
    if count > MAX_SECTIONS {
        return Err(IoError::parse(format!(
            "header claims {count} sections, more than the format allows ({MAX_SECTIONS})"
        )));
    }
    let count = count as usize;
    let header_len = HEAD_LEN + ENTRY_LEN * count + 8;
    if bytes.len() < header_len {
        return Err(IoError::parse(format!(
            "file truncated: header with {count} sections needs {header_len} bytes, file has {}",
            bytes.len()
        )));
    }
    let stored_header_sum = rd_u64(bytes, header_len - 8);
    if checksum(&bytes[..header_len - 8]) != stored_header_sum {
        return Err(IoError::parse(
            "header checksum mismatch (file corrupt)".to_string(),
        ));
    }

    let flags = rd_u64(bytes, 16);
    let n = usize::try_from(rd_u64(bytes, 24))
        .map_err(|_| IoError::parse("node count does not fit this platform"))?;
    let m = usize::try_from(rd_u64(bytes, 32))
        .map_err(|_| IoError::parse("edge count does not fit this platform"))?;
    let adj = usize::try_from(rd_u64(bytes, 40))
        .map_err(|_| IoError::parse("adjacency length does not fit this platform"))?;
    let total_weight = f64::from_bits(rd_u64(bytes, 48));
    let body_sum_stored = rd_u64(bytes, 56);

    if n > Node::MAX as usize {
        return Err(IoError::parse(format!(
            "header claims {n} nodes, more than the u32 id space"
        )));
    }
    if adj > 2 * m {
        return Err(IoError::parse(format!(
            "header claims adjacency length {adj}, inconsistent with {m} edges"
        )));
    }
    // The same pre-allocation admission gate as the METIS header path.
    if budget.admits(n, m).is_err() {
        return Err(IoError::parse(format!(
            "header claims {n} nodes / {m} edges, exceeding the ingest limit"
        )));
    }

    // Section table: every payload must lie fully inside the file, past the
    // header, with no arithmetic overflow.
    let mut entries = Vec::with_capacity(count);
    for i in 0..count {
        let base = HEAD_LEN + ENTRY_LEN * i;
        let id = rd_u32(bytes, base);
        let offset = usize::try_from(rd_u64(bytes, base + 8)).map_err(|_| {
            IoError::parse(format!("section {id}: offset does not fit this platform"))
        })?;
        let len = usize::try_from(rd_u64(bytes, base + 16)).map_err(|_| {
            IoError::parse(format!("section {id}: length does not fit this platform"))
        })?;
        let end = offset.checked_add(len).ok_or_else(|| {
            IoError::parse(format!(
                "section {id}: length overflows ({len} bytes at offset {offset})"
            ))
        })?;
        if offset < header_len || end > bytes.len() {
            return Err(IoError::parse(format!(
                "section {id}: {len} bytes at offset {offset} overflows the file ({} bytes)",
                bytes.len()
            )));
        }
        entries.push(SectionEntry { id, offset, len });
    }

    // Body checksum over the payloads, in table order.
    let mut body_sum = 0u64;
    for e in &entries {
        body_sum = fold_body(body_sum, checksum(&bytes[e.offset..e.offset + e.len]));
    }
    if body_sum != body_sum_stored {
        return Err(IoError::parse(
            "data checksum mismatch (file corrupt)".to_string(),
        ));
    }

    let section = |id: u32| entries.iter().find(|e| e.id == id);
    let sized = |id: u32, name: &str, want: usize| -> Result<&[u8], IoError> {
        let e = section(id)
            .ok_or_else(|| IoError::parse(format!("missing required section {name} (id {id})")))?;
        if e.len != want {
            return Err(IoError::parse(format!(
                "section {name} has {} bytes, want {want} for this header",
                e.len
            )));
        }
        Ok(&bytes[e.offset..e.offset + e.len])
    };

    let n_plus_1 = n
        .checked_add(1)
        .ok_or_else(|| IoError::parse("node count overflows"))?;
    let offsets = from_le_u64s(sized(SEC_OFFSETS, "offsets", n_plus_1 * 8)?);
    let targets = from_le_u32s(sized(SEC_TARGETS, "targets", adj * 4)?);
    let weights = match section(SEC_WEIGHTS) {
        Some(_) => from_le_f64s(sized(SEC_WEIGHTS, "weights", adj * 8)?),
        // Unweighted graphs omit the section; every weight is 1.
        None => vec![1.0; adj],
    };
    let weighted_degrees = from_le_f64s(sized(SEC_WDEG, "weighted-degrees", n * 8)?);
    let self_loops = from_le_f64s(sized(SEC_SLOOP, "self-loops", n * 8)?);

    let relabeling = if flags & FLAG_RELABELED != 0 {
        let perm = from_le_u32s(sized(SEC_PERM, "relabeling", n * 4)?);
        Some(
            Relabeling::from_new_of_old(perm)
                .map_err(|e| IoError::parse(format!("stored relabeling is invalid: {e}")))?,
        )
    } else {
        None
    };

    let wal_seq = match section(SEC_WALSEQ) {
        Some(_) => Some(rd_u64(sized(SEC_WALSEQ, "wal-seq", 8)?, 0)),
        None => None,
    };

    let graph = Graph::from_cached_parts(CsrParts {
        offsets,
        targets,
        weights,
        weighted_degrees,
        self_loops,
        total_weight,
        num_edges: m,
    })
    .map_err(|e| IoError::parse(format!("inconsistent graph data: {e}")))?;

    Ok(PcgGraph {
        graph,
        relabeling,
        wal_seq,
    })
}

/// Reads a binary graph from `path` under a [`Budget`], recording an
/// `ingest/load` phase span (with a `bytes` counter) on `recorder` — the
/// binary counterpart of [`crate::read_metis_budgeted`]'s
/// `ingest/parse`/`ingest/build` pair.
///
/// With the `mmap` feature the file is mapped instead of read, so reopen
/// cost is page-cache lookups rather than a copy; the default build stays
/// on the safe `std::fs::read` path.
pub fn read_pcg_budgeted(
    path: impl AsRef<Path>,
    recorder: &Recorder,
    budget: &Budget,
) -> Result<PcgGraph, IoError> {
    let path = path.as_ref();
    at_path(path, {
        (|| {
            let span = recorder.span("ingest/load");
            #[cfg(feature = "mmap")]
            let bytes = crate::mmap::Mmap::map(path).map_err(IoError::from)?;
            #[cfg(not(feature = "mmap"))]
            let bytes = std::fs::read(path).map_err(IoError::from)?;
            let out = read_pcg_bytes_budgeted(&bytes, budget)?;
            span.counter("bytes", bytes.len() as u64);
            span.close();
            Ok(out)
        })()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcom_graph::GraphBuilder;

    fn sample(weighted: bool) -> Graph {
        let mut b = GraphBuilder::new(6);
        b.add_unweighted_edge(0, 1);
        b.add_unweighted_edge(1, 2);
        b.add_unweighted_edge(2, 3);
        b.add_unweighted_edge(3, 4);
        b.add_unweighted_edge(4, 5);
        b.add_unweighted_edge(5, 0);
        b.add_unweighted_edge(0, 3);
        if weighted {
            b.add_edge(1, 4, 2.5);
            b.add_edge(2, 2, 0.5);
        }
        b.build()
    }

    fn assert_same_graph(a: &Graph, b: &Graph) {
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.total_edge_weight(), b.total_edge_weight());
        // audit:allow(lossy-cast): bounded by the u32 node id space
        for u in 0..a.node_count() as Node {
            assert_eq!(a.neighbors(u), b.neighbors(u));
            assert_eq!(a.neighbors_and_weights(u).1, b.neighbors_and_weights(u).1);
            assert_eq!(a.weighted_degree(u), b.weighted_degree(u));
            assert_eq!(a.self_loop_weight(u), b.self_loop_weight(u));
        }
    }

    #[test]
    fn roundtrip_unweighted() {
        let g = sample(false);
        let bytes = pcg_bytes(&g, None).unwrap();
        assert!(is_pcg_magic(&bytes));
        let loaded = read_pcg_bytes_budgeted(&bytes, &Budget::unlimited()).unwrap();
        assert_same_graph(&g, &loaded.graph);
        assert!(loaded.relabeling.is_none());
    }

    #[test]
    fn roundtrip_weighted_and_self_loops() {
        let g = sample(true);
        let bytes = pcg_bytes(&g, None).unwrap();
        let loaded = read_pcg_bytes_budgeted(&bytes, &Budget::unlimited()).unwrap();
        assert_same_graph(&g, &loaded.graph);
    }

    #[test]
    fn unweighted_graphs_omit_the_weights_section() {
        let unweighted = pcg_bytes(&sample(false), None).unwrap();
        let weighted = pcg_bytes(&sample(true), None).unwrap();
        // Section counts differ by exactly the weights section.
        assert_eq!(rd_u32(&unweighted, 12) + 1, rd_u32(&weighted, 12));
    }

    #[test]
    fn roundtrip_relabeled() {
        let g = sample(true);
        let r = Relabeling::degree_ordered(&g);
        let h = r.apply(&g);
        let bytes = pcg_bytes(&h, Some(&r)).unwrap();
        let loaded = read_pcg_bytes_budgeted(&bytes, &Budget::unlimited()).unwrap();
        assert_same_graph(&h, &loaded.graph);
        let lr = loaded.relabeling.unwrap();
        assert_eq!(lr.new_of_old(), r.new_of_old());
        assert_eq!(lr.old_of_new(), r.old_of_new());
    }

    #[test]
    fn roundtrip_wal_seq_section() {
        let g = sample(true);
        let bytes = pcg_bytes_with_wal_seq(&g, None, Some(417)).unwrap();
        let loaded = read_pcg_bytes_budgeted(&bytes, &Budget::unlimited()).unwrap();
        assert_same_graph(&g, &loaded.graph);
        assert_eq!(loaded.wal_seq, Some(417));
        // Files written without a WAL context read back as None.
        let plain = pcg_bytes(&g, None).unwrap();
        let loaded = read_pcg_bytes_budgeted(&plain, &Budget::unlimited()).unwrap();
        assert_eq!(loaded.wal_seq, None);
    }

    #[test]
    fn roundtrip_empty_graph() {
        let g = GraphBuilder::new(0).build();
        let bytes = pcg_bytes(&g, None).unwrap();
        let loaded = read_pcg_bytes_budgeted(&bytes, &Budget::unlimited()).unwrap();
        assert_eq!(loaded.graph.node_count(), 0);
        assert_eq!(loaded.graph.edge_count(), 0);
    }

    #[test]
    fn file_roundtrip_records_load_span() {
        let dir = std::env::temp_dir().join(format!("parcom-binfmt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.pcg");
        let g = sample(true);
        write_pcg(&g, None, &path).unwrap();

        let rec = Recorder::enabled();
        let loaded = read_pcg_budgeted(&path, &rec, &Budget::unlimited()).unwrap();
        assert_same_graph(&g, &loaded.graph);
        let report = rec.finish("ingest");
        let load = report.phase("ingest/load").unwrap();
        assert_eq!(
            load.counter("bytes"),
            Some(std::fs::metadata(&path).unwrap().len())
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn budget_rejects_oversized_header_before_loading() {
        let g = sample(false);
        let bytes = pcg_bytes(&g, None).unwrap();
        let budget = Budget::unlimited().with_input_limits(2, 1000);
        let err = read_pcg_bytes_budgeted(&bytes, &budget).unwrap_err();
        assert!(err.to_string().contains("exceeding the ingest limit"));
    }

    #[test]
    fn checksum_is_order_and_length_sensitive() {
        assert_ne!(checksum(b"abcdefgh12345678"), checksum(b"12345678abcdefgh"));
        assert_ne!(checksum(b"abc"), checksum(b"abc\0"));
        assert_ne!(fold_body(0, 1), fold_body(1, 0));
    }
}
