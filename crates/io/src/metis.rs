//! METIS/Chaco graph format (the DIMACS collection's format).
//!
//! Header: `n m [fmt]` where `fmt` is `1` when edge weights are present.
//! Line `i` (1-based) lists the neighbors of node `i`; with weights,
//! neighbors alternate with their edge weight. Comment lines start with `%`.
//!
//! Reading is a parallel byte-chunked pipeline (DESIGN.md §10): the file is
//! read into one buffer, split on line boundaries into per-core chunks, and
//! each chunk parses with zero per-line allocation. A first cheap pass
//! counts adjacency lines per chunk so a prefix sum can assign every chunk
//! its absolute starting node id and line number; the second pass parses.
//! Small inputs (or a single-thread pool) fall back to one chunk, which
//! runs the same parser inline. The pre-parallel line-by-line reader is
//! retained as [`read_metis_seq`], the differential-test and benchmark
//! reference.

use crate::chunk::{self, Chunk};
use crate::{at_path, parse_error, IoError};
use parcom_graph::{Graph, GraphBuilder, Node};
use parcom_guard::Budget;
use parcom_obs::Recorder;
use rayon::prelude::*;
use std::io::{BufRead, BufWriter, Read, Write};
use std::path::Path;

/// Rejects implausible or budget-exceeding header claims *before* any
/// proportional allocation happens. `lineno` is the header's line.
fn admit_header(n: usize, m: usize, lineno: usize, budget: &Budget) -> Result<(), IoError> {
    // A simple undirected graph with self-loops has at most n(n+1)/2
    // edges; a header claiming more is corrupt, whatever the limits.
    if (m as u128) > (n as u128) * (n as u128 + 1) / 2 {
        return Err(parse_error(
            lineno,
            format!("header claims {m} edges, more than a complete graph on {n} nodes"),
        ));
    }
    if budget.admits(n, m).is_err() {
        return Err(parse_error(
            lineno,
            format!("header claims {n} nodes / {m} edges, exceeding the ingest limit"),
        ));
    }
    Ok(())
}

/// Parsed header plus where the adjacency body starts.
struct Header {
    n: usize,
    m: usize,
    weighted: bool,
    /// Byte offset of the first body line.
    body_start: usize,
    /// 1-based line number of the first body line.
    body_first_line: usize,
}

fn parse_header(bytes: &[u8]) -> Result<Header, IoError> {
    let mut offset = 0usize;
    let mut lineno = 0usize;
    while offset < bytes.len() {
        let (line_end, next) = match bytes[offset..].iter().position(|&b| b == b'\n') {
            Some(i) => (offset + i, offset + i + 1),
            None => (bytes.len(), bytes.len()),
        };
        lineno += 1;
        let t = bytes[offset..line_end].trim_ascii();
        if t.is_empty() || t.starts_with(b"%") {
            offset = next;
            continue;
        }

        let fields: Vec<&[u8]> = chunk::tokens(t).collect();
        if fields.len() < 2 {
            return Err(parse_error(lineno, "header needs `n m [fmt]`"));
        }
        let n =
            chunk::parse_usize(fields[0]).ok_or_else(|| parse_error(lineno, "bad node count"))?;
        let m =
            chunk::parse_usize(fields[1]).ok_or_else(|| parse_error(lineno, "bad edge count"))?;
        let weighted = match fields.get(2).copied().unwrap_or(b"0") {
            b"0" | b"00" => false,
            b"1" | b"01" => true,
            other => {
                return Err(parse_error(
                    lineno,
                    format!(
                        "unsupported fmt field `{}` (node weights not supported)",
                        String::from_utf8_lossy(other)
                    ),
                ))
            }
        };
        if n > u32::MAX as usize {
            return Err(parse_error(
                lineno,
                format!("node count {n} exceeds the u32 id space"),
            ));
        }
        return Ok(Header {
            n,
            m,
            weighted,
            body_start: next,
            body_first_line: lineno + 1,
        });
    }
    Err(parse_error(0, "missing header line"))
}

/// True when the line is an adjacency (non-comment) line; one forward
/// scan, no trailing trim.
fn is_data_line(line: &[u8]) -> bool {
    match line.iter().position(|b| !b.is_ascii_whitespace()) {
        Some(i) => line[i] != b'%',
        None => true, // blank lines are isolated-node rows
    }
}

/// Out-of-line fallback for neighbor tokens the fused cursor cannot accept
/// (more than 18 digits, a stray sign, embedded garbage): re-scans the
/// token extent and delegates to the general parser so the error message —
/// and the accept set, e.g. 19-digit ids that still fit a `u64` — match
/// the sequential reference exactly. Returns the value and the cursor
/// position after the token.
#[cold]
fn neighbor_token_slow(
    bytes: &[u8],
    tok_start: usize,
    lineno: usize,
) -> Result<(usize, usize), IoError> {
    // tokens never span lines: `\n` (and `\r`) are ASCII whitespace
    let end = bytes[tok_start..]
        .iter()
        .position(|b| b.is_ascii_whitespace())
        .map_or(bytes.len(), |i| tok_start + i);
    let tok = &bytes[tok_start..end];
    match chunk::parse_usize(tok) {
        Some(v) => Ok((v, end)),
        None => Err(parse_error(
            lineno,
            format!("bad neighbor id `{}`", String::from_utf8_lossy(tok)),
        )),
    }
}

/// Parses one body chunk whose first adjacency line belongs to node
/// `start_node`, returning the kept (canonical `v >= u`) edges and the
/// number of adjacency lines seen.
///
/// The loop is a single fused byte cursor: line splitting, whitespace
/// skipping, comment classification, and decimal accumulation all happen
/// in one pass over the chunk — no line or token slices materialize on
/// the happy path. Up to 18 digits cannot overflow the `u64`
/// accumulator, so the hot loop runs unchecked; anything else drops to
/// [`neighbor_token_slow`]. `\n` and `\r` are ASCII whitespace, so the
/// token boundary checks double as line-end checks.
#[allow(clippy::type_complexity)] // (edges, data-line count) — a one-use pair
                                  // audit:allow(budget-propagation): linear scan bounded by the chunk; the driver checks the budget between pipeline phases
fn parse_body_chunk(
    c: Chunk<'_>,
    start_node: usize,
    n: usize,
    weighted: bool,
) -> Result<(Vec<(Node, Node, f64)>, usize), IoError> {
    parcom_guard::faultpoint!("io/chunk-parse");
    let b = c.bytes;
    let len = b.len();
    // Each kept edge costs well over 8 input bytes on average (two id
    // tokens per undirected edge, one kept); the estimate over-reserves
    // mildly and stays proportional to the chunk size.
    let mut edges = Vec::with_capacity(len / 8);
    let mut node = start_node;
    let mut data_lines = 0usize;
    let mut lineno = c.first_line;
    let mut i = 0usize;
    while i < len {
        // one outer iteration consumes exactly one line, `\n` included
        let current_line = lineno;
        lineno += 1;
        while i < len && b[i] != b'\n' && b[i].is_ascii_whitespace() {
            i += 1;
        }
        if i < len && b[i] == b'%' {
            while i < len && b[i] != b'\n' {
                i += 1;
            }
            i += 1;
            continue; // comment line
        }
        data_lines += 1;
        let blank = i >= len || b[i] == b'\n';
        if node >= n {
            if blank {
                i += 1; // trailing blank lines are tolerated
                continue;
            }
            return Err(parse_error(current_line, "more adjacency lines than nodes"));
        }
        let u = node as Node;
        node += 1;
        if blank {
            i += 1; // blank line: isolated node
            continue;
        }
        loop {
            // cursor is at the first byte of a neighbor token
            let tok_start = i;
            if b[i] == b'+' {
                i += 1;
            }
            let mut acc = 0u64;
            let mut digits = 0usize;
            while i < len {
                let d = b[i].wrapping_sub(b'0');
                if d > 9 {
                    break;
                }
                acc = acc.wrapping_mul(10).wrapping_add(d as u64);
                digits += 1;
                i += 1;
            }
            let at_boundary = i >= len || b[i].is_ascii_whitespace();
            let v = if digits > 0 && digits <= 18 && at_boundary {
                acc as usize
            } else {
                let (v, end) = neighbor_token_slow(b, tok_start, current_line)?;
                i = end;
                v
            };
            if v < 1 || v > n {
                return Err(parse_error(
                    current_line,
                    format!("neighbor id {v} out of range 1..={n}"),
                ));
            }
            let v = (v - 1) as Node;
            let w = if weighted {
                while i < len && b[i] != b'\n' && b[i].is_ascii_whitespace() {
                    i += 1;
                }
                if i >= len || b[i] == b'\n' {
                    return Err(parse_error(current_line, "missing edge weight"));
                }
                let wt_start = i;
                while i < len && !b[i].is_ascii_whitespace() {
                    i += 1;
                }
                let wt = &b[wt_start..i];
                let w = chunk::parse_f64(wt).ok_or_else(|| {
                    parse_error(
                        current_line,
                        format!("bad edge weight `{}`", String::from_utf8_lossy(wt)),
                    )
                })?;
                if !w.is_finite() || w <= 0.0 {
                    return Err(parse_error(
                        current_line,
                        format!(
                            "edge weight `{}` must be positive and finite",
                            String::from_utf8_lossy(wt)
                        ),
                    ));
                }
                w
            } else {
                1.0
            };
            // each undirected edge appears in both endpoint lines; keep one
            if v >= u {
                edges.push((u, v, w));
            }
            while i < len && b[i] != b'\n' && b[i].is_ascii_whitespace() {
                i += 1;
            }
            if i >= len {
                break;
            }
            if b[i] == b'\n' {
                i += 1;
                break;
            }
        }
    }
    Ok((edges, data_lines))
}

/// Everything known after parsing, before CSR assembly.
struct ParsedMetis {
    builder: GraphBuilder,
    claimed_edges: usize,
}

/// Parses header and body into a loaded [`GraphBuilder`] using up to
/// `parts` chunks.
fn parse_metis(bytes: &[u8], parts: usize, budget: &Budget) -> Result<ParsedMetis, IoError> {
    let header = parse_header(bytes)?;
    let (n, m) = (header.n, header.m);
    admit_header(n, m, header.body_first_line - 1, budget)?;
    let body = &bytes[header.body_start..];
    let chunks = chunk::chunk_lines(body, parts, header.body_first_line);
    let weighted = header.weighted;

    let (per_chunk, total_data) = if chunks.len() == 1 {
        // single chunk (small file or single-thread pool): no counting
        // pre-pass needed, node ids start at 0
        let (edges, data) = parse_body_chunk(chunks[0], 0, n, weighted)?;
        (vec![edges], data)
    } else {
        // Pass 1: adjacency (non-comment) lines per chunk, so a prefix
        // sum can hand every chunk the node id of its first adjacency
        // line.
        let data_counts: Vec<usize> = chunks
            .par_iter()
            .map(|c| chunk::lines(c.bytes).filter(|l| is_data_line(l)).count())
            .collect();
        let mut start_nodes = Vec::with_capacity(chunks.len());
        let mut total_data = 0usize;
        for &d in &data_counts {
            start_nodes.push(total_data);
            total_data += d;
        }

        // Pass 2: parse every chunk; the earliest chunk's error wins
        // (chunks are in line order, so that is the earliest line,
        // matching the sequential reader's first-error behavior).
        let tasks: Vec<(Chunk<'_>, usize)> = chunks.into_iter().zip(start_nodes).collect();
        let per_chunk = chunk::first_error(
            tasks
                .into_par_iter()
                .map(|(c, start)| parse_body_chunk(c, start, n, weighted).map(|(e, _)| e))
                .collect::<Vec<_>>(),
        )?;
        (per_chunk, total_data)
    };

    let consumed = total_data.min(n);
    if consumed != n {
        // cold: only now is the whole-file line count needed
        let last_line = header.body_first_line - 1 + chunk::line_count(body);
        return Err(parse_error(
            last_line,
            format!("expected {n} adjacency lines, got {consumed}"),
        ));
    }
    // Zero-copy handover: the first chunk's vector moves into the builder,
    // later chunks append (in chunk = line order, so the pending-edge
    // sequence matches the sequential reader's exactly). The parse loop
    // already range-checked every neighbor and kept only `v >= u`, so the
    // canonical fast path skips the validation pass.
    let mut builder = GraphBuilder::new(n);
    for v in per_chunk {
        builder.extend_canonical(v);
    }
    Ok(ParsedMetis {
        builder,
        claimed_edges: m,
    })
}

/// Assembles the graph and applies the whole-file consistency check.
/// `last_line` is consulted only on the (cold) mismatch path, so callers
/// pass it lazily and the happy path never counts lines.
fn finish_metis(parsed: ParsedMetis, last_line: impl FnOnce() -> usize) -> Result<Graph, IoError> {
    let g = parsed.builder.build();
    if g.edge_count() != parsed.claimed_edges {
        return Err(parse_error(
            last_line(),
            format!(
                "header claims {} edges, file defines {}",
                parsed.claimed_edges,
                g.edge_count()
            ),
        ));
    }
    Ok(g)
}

/// Reads a METIS graph from a byte buffer with an explicit chunk count.
/// Exposed for the differential tests and benchmarks; [`read_metis_from`]
/// picks the chunk count automatically.
pub fn read_metis_chunked(bytes: &[u8], parts: usize) -> Result<Graph, IoError> {
    finish_metis(parse_metis(bytes, parts, &Budget::unlimited())?, || {
        chunk::line_count(bytes)
    })
}

/// Reads a METIS graph from a byte buffer under a [`Budget`]: header
/// claims exceeding the budget's input limits are rejected *before* any
/// allocation proportional to them happens.
pub fn read_metis_bytes_budgeted(bytes: &[u8], budget: &Budget) -> Result<Graph, IoError> {
    finish_metis(
        parse_metis(bytes, chunk::auto_parts(bytes.len()), budget)?,
        || chunk::line_count(bytes),
    )
}

/// Reads a METIS graph from an in-memory buffer with an automatically
/// chosen chunk count — the zero-copy core of [`read_metis_from`] and
/// [`read_metis`].
pub fn read_metis_bytes(bytes: &[u8]) -> Result<Graph, IoError> {
    read_metis_chunked(bytes, chunk::auto_parts(bytes.len()))
}

/// Reads a graph in METIS format from a reader (buffer + chunked parse;
/// see the module docs).
pub fn read_metis_from(mut reader: impl Read) -> Result<Graph, IoError> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    read_metis_bytes(&bytes)
}

/// The retained pre-parallel reader: line-by-line with a `String` per
/// line, sequential counting-sort assembly. The differential proptests
/// pin the chunked parser against this, and the `ingest` benchmarks use
/// it as the baseline.
pub fn read_metis_seq(bytes: &[u8]) -> Result<Graph, IoError> {
    let mut lines = bytes.lines().enumerate();

    // header (skipping comments)
    let (header_lineno, header) = loop {
        match lines.next() {
            Some((i, line)) => {
                let line = line?;
                let t = line.trim();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                break (i + 1, t.to_string());
            }
            None => return Err(parse_error(0, "missing header line")),
        }
    };
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() < 2 {
        return Err(parse_error(header_lineno, "header needs `n m [fmt]`"));
    }
    let n: usize = fields[0]
        .parse()
        .map_err(|_| parse_error(header_lineno, "bad node count"))?;
    let m: usize = fields[1]
        .parse()
        .map_err(|_| parse_error(header_lineno, "bad edge count"))?;
    let fmt = fields.get(2).copied().unwrap_or("0");
    let weighted = match fmt {
        "0" | "00" => false,
        "1" | "01" => true,
        other => {
            return Err(parse_error(
                header_lineno,
                format!("unsupported fmt field `{other}` (node weights not supported)"),
            ))
        }
    };

    if n > u32::MAX as usize {
        return Err(parse_error(
            header_lineno,
            format!("node count {n} exceeds the u32 id space"),
        ));
    }
    admit_header(n, m, header_lineno, &Budget::unlimited())?;
    let mut b = GraphBuilder::with_capacity(n, m.min(1 << 24));
    let mut node: usize = 0;
    let mut last_line = header_lineno;
    for (i, line) in lines {
        let lineno = i + 1;
        last_line = lineno;
        let line = line?;
        let t = line.trim();
        if t.starts_with('%') {
            continue;
        }
        if node >= n {
            if t.is_empty() {
                continue;
            }
            return Err(parse_error(lineno, "more adjacency lines than nodes"));
        }
        let u = node as Node;
        let mut tokens = t.split_whitespace();
        while let Some(tok) = tokens.next() {
            let v: usize = tok
                .parse()
                .map_err(|_| parse_error(lineno, format!("bad neighbor id `{tok}`")))?;
            if v < 1 || v > n {
                return Err(parse_error(
                    lineno,
                    format!("neighbor id {v} out of range 1..={n}"),
                ));
            }
            let v = (v - 1) as Node;
            let w = if weighted {
                let Some(wt) = tokens.next() else {
                    return Err(parse_error(lineno, "missing edge weight"));
                };
                let w = wt
                    .parse::<f64>()
                    .map_err(|_| parse_error(lineno, format!("bad edge weight `{wt}`")))?;
                if !w.is_finite() || w <= 0.0 {
                    return Err(parse_error(
                        lineno,
                        format!("edge weight `{wt}` must be positive and finite"),
                    ));
                }
                w
            } else {
                1.0
            };
            // each undirected edge appears in both endpoint lines; keep one
            if v >= u {
                b.add_edge(u, v, w);
            }
        }
        node += 1;
    }
    if node != n {
        return Err(parse_error(
            last_line,
            format!("expected {n} adjacency lines, got {node}"),
        ));
    }
    let g = b.build_reference();
    if g.edge_count() != m {
        return Err(parse_error(
            last_line,
            format!("header claims {m} edges, file defines {}", g.edge_count()),
        ));
    }
    Ok(g)
}

/// Reads a METIS graph from a file path. Errors carry the path (and line).
pub fn read_metis(path: impl AsRef<Path>) -> Result<Graph, IoError> {
    read_metis_recorded(path, &Recorder::disabled())
}

/// Reads a METIS graph from a file path, recording `ingest/parse` and
/// `ingest/build` phase spans (with byte/edge counters) on `recorder`.
/// With a disabled recorder this is exactly [`read_metis`].
pub fn read_metis_recorded(path: impl AsRef<Path>, recorder: &Recorder) -> Result<Graph, IoError> {
    read_metis_budgeted(path, recorder, &Budget::unlimited())
}

/// Reads a METIS graph from a file path under a [`Budget`], recording
/// ingest phase spans on `recorder`. Header claims exceeding the budget's
/// input limits are rejected before allocation, with `path:line` context.
pub fn read_metis_budgeted(
    path: impl AsRef<Path>,
    recorder: &Recorder,
    budget: &Budget,
) -> Result<Graph, IoError> {
    let path = path.as_ref();
    at_path(path, {
        (|| {
            let parse_span = recorder.span("ingest/parse");
            let bytes = std::fs::read(path).map_err(IoError::from)?;
            let parsed = parse_metis(&bytes, chunk::auto_parts(bytes.len()), budget)?;
            parse_span.counter("bytes", bytes.len() as u64);
            parse_span.counter("pending_edges", parsed.builder.pending_edges() as u64);
            parse_span.close();

            let build_span = recorder.span("ingest/build");
            let g = finish_metis(parsed, || chunk::line_count(&bytes))?;
            build_span.counter("edges", g.edge_count() as u64);
            build_span.close();
            Ok(g)
        })()
    })
}

/// Writes a graph in METIS format to a writer. Weights are emitted unless
/// every edge weight is exactly 1.
pub fn write_metis_to(g: &Graph, writer: impl Write) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    let weighted = g.nodes().any(|u| g.edges_of(u).any(|(_, wt)| wt != 1.0));
    writeln!(
        w,
        "{} {}{}",
        g.node_count(),
        g.edge_count(),
        if weighted { " 1" } else { "" }
    )?;
    for u in g.nodes() {
        let mut first = true;
        for (v, wt) in g.edges_of(u) {
            if !first {
                write!(w, " ")?;
            }
            if weighted {
                write!(w, "{} {}", v + 1, wt)?;
            } else {
                write!(w, "{}", v + 1)?;
            }
            first = false;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Writes a METIS graph to a file path. Errors carry the path.
pub fn write_metis(g: &Graph, path: impl AsRef<Path>) -> Result<(), IoError> {
    let path = path.as_ref();
    at_path(
        path,
        std::fs::File::create(path)
            .map_err(IoError::from)
            .and_then(|f| write_metis_to(g, f)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcom_generators::ring_of_cliques;

    #[test]
    fn parses_simple_file() {
        let input = "% a triangle plus pendant\n4 4\n2 3\n1 3\n1 2 4\n3\n";
        let g = read_metis_from(input.as_bytes()).unwrap();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert!(g.has_edge(0, 1) && g.has_edge(2, 3));
    }

    #[test]
    fn parses_weighted_file() {
        let input = "3 2 1\n2 5.5\n1 5.5 3 2\n2 2\n";
        let g = read_metis_from(input.as_bytes()).unwrap();
        assert_eq!(g.edge_weight(0, 1), Some(5.5));
        assert_eq!(g.edge_weight(1, 2), Some(2.0));
    }

    #[test]
    fn chunked_matches_sequential_on_fixture() {
        let input = "% comment\n6 3 1\n2 1.5\n1 1.5 3 2.5\n2 2.5\n% tail\n5 0.5\n4 0.5\n\n";
        let reference = read_metis_seq(input.as_bytes()).unwrap();
        for parts in [1usize, 2, 3, 8] {
            let g = read_metis_chunked(input.as_bytes(), parts).unwrap();
            assert_eq!(g.node_count(), reference.node_count());
            for u in reference.nodes() {
                let (t1, w1) = reference.neighbors_and_weights(u);
                let (t2, w2) = g.neighbors_and_weights(u);
                assert_eq!(t1, t2, "parts={parts}");
                assert_eq!(w1, w2, "parts={parts}");
            }
        }
    }

    #[test]
    fn roundtrip_unweighted() {
        let (g, _) = ring_of_cliques(4, 5);
        let mut buf = Vec::new();
        write_metis_to(&g, &mut buf).unwrap();
        let g2 = read_metis_from(buf.as_slice()).unwrap();
        assert_eq!(g.node_count(), g2.node_count());
        assert_eq!(g.edge_count(), g2.edge_count());
        for u in g.nodes() {
            assert_eq!(g.neighbors(u), g2.neighbors(u));
        }
    }

    #[test]
    fn roundtrip_weighted() {
        let mut b = parcom_graph::GraphBuilder::new(3);
        b.add_edge(0, 1, 2.5);
        b.add_edge(1, 2, 0.5);
        let g = b.build();
        let mut buf = Vec::new();
        write_metis_to(&g, &mut buf).unwrap();
        let g2 = read_metis_from(buf.as_slice()).unwrap();
        assert_eq!(g2.edge_weight(0, 1), Some(2.5));
        assert_eq!(g2.edge_weight(1, 2), Some(0.5));
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_metis_from("5\n".as_bytes()).is_err());
        assert!(read_metis_from("".as_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_range_neighbor() {
        let err = read_metis_from("2 1\n3\n1\n".as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("out of range"), "{msg}");
    }

    #[test]
    fn rejects_edge_count_mismatch() {
        // 2 claimed edges are plausible on 3 nodes, so the header is
        // admitted and the whole-file consistency check catches it
        let err = read_metis_from("3 2\n2\n1\n\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("header claims"), "{err}");
        assert!(err.to_string().contains("file defines"), "{err}");
        // the whole-file check carries the last line's number (satellite
        // fix: no more naked `line 0` / missing-location errors)
        assert_eq!(err.line(), Some(4), "{err}");
    }

    #[test]
    fn missing_adjacency_lines_carry_last_line() {
        let err = read_metis_from("4 2\n2\n1\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected 4 adjacency"), "{err}");
        assert_eq!(err.line(), Some(3), "{err}");
        let err = read_metis_seq("4 2\n2\n1\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected 4 adjacency"), "{err}");
        assert_eq!(err.line(), Some(3), "{err}");
    }

    #[test]
    fn rejects_more_edges_than_complete_graph() {
        // 3 nodes admit at most 6 edges (self-loops included)
        let err = read_metis_from("3 7\n2\n1\n\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("complete graph"), "{err}");
        assert_eq!(err.line(), Some(1), "{err}");
        let err = read_metis_seq("3 7\n2\n1\n\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("complete graph"), "{err}");
        assert_eq!(err.line(), Some(1), "{err}");
    }

    #[test]
    fn budget_rejects_oversized_header_before_parsing() {
        let budget = Budget::unlimited().with_input_limits(100, 1000);
        // body is deliberately garbage: rejection must happen on the
        // header alone, before any body parsing or allocation
        let bytes = b"101 50\nthis is not a valid body\n";
        let err = read_metis_bytes_budgeted(bytes, &budget).unwrap_err();
        assert!(err.to_string().contains("ingest limit"), "{err}");
        assert_eq!(err.line(), Some(1), "{err}");
        // within limits, the same reader accepts a well-formed file
        let g = read_metis_bytes_budgeted(b"2 1\n2\n1\n", &budget).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn rejects_node_weight_formats() {
        assert!(read_metis_from("2 1 11\n2\n1\n".as_bytes()).is_err());
    }

    #[test]
    fn empty_lines_are_isolated_nodes() {
        let g = read_metis_from("3 1\n2\n1\n\n".as_bytes()).unwrap();
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn error_lines_match_between_parsers() {
        // malformed neighbor on line 4, visible to chunked and sequential
        let input = "% c\n3 2\n2\n1 x\n2\n";
        let seq = read_metis_seq(input.as_bytes()).unwrap_err();
        for parts in [1usize, 2, 4] {
            let par = read_metis_chunked(input.as_bytes(), parts).unwrap_err();
            assert_eq!(par.line(), seq.line(), "parts={parts}");
            assert_eq!(par.to_string(), seq.to_string(), "parts={parts}");
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("parcom_metis_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.metis");
        let (g, _) = ring_of_cliques(3, 4);
        write_metis(&g, &path).unwrap();
        let g2 = read_metis(&path).unwrap();
        assert_eq!(g.edge_count(), g2.edge_count());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recorded_read_captures_ingest_phases() {
        let dir = std::env::temp_dir().join("parcom_metis_recorded_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.metis");
        let (g, _) = ring_of_cliques(3, 4);
        write_metis(&g, &path).unwrap();
        let rec = Recorder::enabled();
        let g2 = read_metis_recorded(&path, &rec).unwrap();
        assert_eq!(g.edge_count(), g2.edge_count());
        let report = rec.finish("ingest");
        let parse = report.phase("ingest/parse").expect("parse phase");
        assert!(parse.counter("bytes").unwrap() > 0);
        let build = report.phase("ingest/build").expect("build phase");
        assert_eq!(build.counter("edges"), Some(g.edge_count() as u64));
        std::fs::remove_dir_all(&dir).ok();
    }
}
