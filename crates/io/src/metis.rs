//! METIS/Chaco graph format (the DIMACS collection's format).
//!
//! Header: `n m [fmt]` where `fmt` is `1` when edge weights are present.
//! Line `i` (1-based) lists the neighbors of node `i`; with weights,
//! neighbors alternate with their edge weight. Comment lines start with `%`.

use crate::{at_path, parse_error, IoError};
use parcom_graph::{Graph, GraphBuilder, Node};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Reads a graph in METIS format from a reader.
pub fn read_metis_from(reader: impl Read) -> Result<Graph, IoError> {
    let reader = BufReader::new(reader);
    let mut lines = reader.lines().enumerate();

    // header (skipping comments)
    let (header_lineno, header) = loop {
        match lines.next() {
            Some((i, line)) => {
                let line = line?;
                let t = line.trim();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                break (i + 1, t.to_string());
            }
            None => return Err(parse_error(0, "missing header line")),
        }
    };
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() < 2 {
        return Err(parse_error(header_lineno, "header needs `n m [fmt]`"));
    }
    let n: usize = fields[0]
        .parse()
        .map_err(|_| parse_error(header_lineno, "bad node count"))?;
    let m: usize = fields[1]
        .parse()
        .map_err(|_| parse_error(header_lineno, "bad edge count"))?;
    let fmt = fields.get(2).copied().unwrap_or("0");
    let weighted = match fmt {
        "0" | "00" => false,
        "1" | "01" => true,
        other => {
            return Err(parse_error(
                header_lineno,
                format!("unsupported fmt field `{other}` (node weights not supported)"),
            ))
        }
    };

    if n > u32::MAX as usize {
        return Err(parse_error(
            header_lineno,
            format!("node count {n} exceeds the u32 id space"),
        ));
    }
    // Cap the speculative reservation: the header is untrusted input and a
    // huge claimed edge count must not abort the process on allocation.
    let mut b = GraphBuilder::with_capacity(n, m.min(1 << 24));
    let mut node: usize = 0;
    for (i, line) in lines {
        let lineno = i + 1;
        let line = line?;
        let t = line.trim();
        if t.starts_with('%') {
            continue;
        }
        if node >= n {
            if t.is_empty() {
                continue;
            }
            return Err(parse_error(lineno, "more adjacency lines than nodes"));
        }
        let u = node as Node;
        let mut tokens = t.split_whitespace();
        while let Some(tok) = tokens.next() {
            let v: usize = tok
                .parse()
                .map_err(|_| parse_error(lineno, format!("bad neighbor id `{tok}`")))?;
            if v < 1 || v > n {
                return Err(parse_error(
                    lineno,
                    format!("neighbor id {v} out of range 1..={n}"),
                ));
            }
            let v = (v - 1) as Node;
            let w = if weighted {
                let Some(wt) = tokens.next() else {
                    return Err(parse_error(lineno, "missing edge weight"));
                };
                let w = wt
                    .parse::<f64>()
                    .map_err(|_| parse_error(lineno, format!("bad edge weight `{wt}`")))?;
                if !w.is_finite() || w <= 0.0 {
                    return Err(parse_error(
                        lineno,
                        format!("edge weight `{wt}` must be positive and finite"),
                    ));
                }
                w
            } else {
                1.0
            };
            // each undirected edge appears in both endpoint lines; keep one
            if v >= u {
                b.add_edge(u, v, w);
            }
        }
        node += 1;
    }
    if node != n {
        return Err(parse_error(
            0,
            format!("expected {n} adjacency lines, got {node}"),
        ));
    }
    let g = b.build();
    if g.edge_count() != m {
        return Err(parse_error(
            0,
            format!("header claims {m} edges, file defines {}", g.edge_count()),
        ));
    }
    Ok(g)
}

/// Reads a METIS graph from a file path. Errors carry the path (and line).
pub fn read_metis(path: impl AsRef<Path>) -> Result<Graph, IoError> {
    let path = path.as_ref();
    at_path(
        path,
        std::fs::File::open(path)
            .map_err(IoError::from)
            .and_then(read_metis_from),
    )
}

/// Writes a graph in METIS format to a writer. Weights are emitted unless
/// every edge weight is exactly 1.
pub fn write_metis_to(g: &Graph, writer: impl Write) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    let weighted = g.nodes().any(|u| g.edges_of(u).any(|(_, wt)| wt != 1.0));
    writeln!(
        w,
        "{} {}{}",
        g.node_count(),
        g.edge_count(),
        if weighted { " 1" } else { "" }
    )?;
    for u in g.nodes() {
        let mut first = true;
        for (v, wt) in g.edges_of(u) {
            if !first {
                write!(w, " ")?;
            }
            if weighted {
                write!(w, "{} {}", v + 1, wt)?;
            } else {
                write!(w, "{}", v + 1)?;
            }
            first = false;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Writes a METIS graph to a file path. Errors carry the path.
pub fn write_metis(g: &Graph, path: impl AsRef<Path>) -> Result<(), IoError> {
    let path = path.as_ref();
    at_path(
        path,
        std::fs::File::create(path)
            .map_err(IoError::from)
            .and_then(|f| write_metis_to(g, f)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcom_generators::ring_of_cliques;

    #[test]
    fn parses_simple_file() {
        let input = "% a triangle plus pendant\n4 4\n2 3\n1 3\n1 2 4\n3\n";
        let g = read_metis_from(input.as_bytes()).unwrap();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert!(g.has_edge(0, 1) && g.has_edge(2, 3));
    }

    #[test]
    fn parses_weighted_file() {
        let input = "3 2 1\n2 5.5\n1 5.5 3 2\n2 2\n";
        let g = read_metis_from(input.as_bytes()).unwrap();
        assert_eq!(g.edge_weight(0, 1), Some(5.5));
        assert_eq!(g.edge_weight(1, 2), Some(2.0));
    }

    #[test]
    fn roundtrip_unweighted() {
        let (g, _) = ring_of_cliques(4, 5);
        let mut buf = Vec::new();
        write_metis_to(&g, &mut buf).unwrap();
        let g2 = read_metis_from(buf.as_slice()).unwrap();
        assert_eq!(g.node_count(), g2.node_count());
        assert_eq!(g.edge_count(), g2.edge_count());
        for u in g.nodes() {
            assert_eq!(g.neighbors(u), g2.neighbors(u));
        }
    }

    #[test]
    fn roundtrip_weighted() {
        let mut b = parcom_graph::GraphBuilder::new(3);
        b.add_edge(0, 1, 2.5);
        b.add_edge(1, 2, 0.5);
        let g = b.build();
        let mut buf = Vec::new();
        write_metis_to(&g, &mut buf).unwrap();
        let g2 = read_metis_from(buf.as_slice()).unwrap();
        assert_eq!(g2.edge_weight(0, 1), Some(2.5));
        assert_eq!(g2.edge_weight(1, 2), Some(0.5));
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_metis_from("5\n".as_bytes()).is_err());
        assert!(read_metis_from("".as_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_range_neighbor() {
        let err = read_metis_from("2 1\n3\n1\n".as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("out of range"), "{msg}");
    }

    #[test]
    fn rejects_edge_count_mismatch() {
        let err = read_metis_from("2 5\n2\n1\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("header claims"), "{err}");
    }

    #[test]
    fn rejects_node_weight_formats() {
        assert!(read_metis_from("2 1 11\n2\n1\n".as_bytes()).is_err());
    }

    #[test]
    fn empty_lines_are_isolated_nodes() {
        let g = read_metis_from("3 1\n2\n1\n\n".as_bytes()).unwrap();
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("parcom_metis_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.metis");
        let (g, _) = ring_of_cliques(3, 4);
        write_metis(&g, &path).unwrap();
        let g2 = read_metis(&path).unwrap();
        assert_eq!(g.edge_count(), g2.edge_count());
        std::fs::remove_dir_all(&dir).ok();
    }
}
