//! Whitespace-separated edge lists (SNAP style).
//!
//! Each non-comment line is `u v [w]`. Node ids may be arbitrary
//! non-negative integers; they are compacted to `0..n` in first-seen order
//! (SNAP files routinely have gaps). Comment lines start with `#` or `%`.
//!
//! Reading follows the same parallel byte-chunked pipeline as the METIS
//! reader (DESIGN.md §10): chunks tokenize in parallel with zero per-line
//! allocation into raw `(line, u, v, w)` records; a short sequential pass
//! then interns node labels in chunk order, which reproduces the
//! first-seen label numbering of the sequential reader exactly. The
//! pre-parallel line-by-line reader is retained as
//! [`read_edge_list_seq`], the differential-test and benchmark reference.

use crate::chunk::{self, Chunk};
use crate::{at_path, parse_error, IoError};
use parcom_graph::hashing::FxHashMap;
use parcom_graph::{Graph, GraphBuilder, Node};
use parcom_obs::Recorder;
use rayon::prelude::*;
use std::io::{BufRead, BufWriter, Read, Write};
use std::path::Path;

/// Result of reading an edge list: the graph plus the original node labels
/// (indexed by compact node id).
#[derive(Debug)]
pub struct EdgeListGraph {
    /// The parsed graph with compact node ids.
    pub graph: Graph,
    /// `labels[v]` is the id node `v` had in the file.
    pub labels: Vec<u64>,
}

/// One tokenized edge before label interning: line number, endpoints as
/// written in the file, weight.
type RawEdge = (usize, u64, u64, f64);

fn parse_chunk(c: Chunk<'_>) -> Result<Vec<RawEdge>, IoError> {
    // one record per data line; lines are rarely shorter than 4 bytes
    let mut out = Vec::with_capacity(c.bytes.len() / 8);
    for (current, line) in (c.first_line..).zip(chunk::lines(c.bytes)) {
        let t = line.trim_ascii();
        if t.is_empty() || t.starts_with(b"#") || t.starts_with(b"%") {
            continue;
        }
        let mut tok = chunk::tokens(t);
        let u = tok
            .next()
            .ok_or_else(|| parse_error(current, "missing source id"))
            .and_then(|s| {
                chunk::parse_u64(s).ok_or_else(|| parse_error(current, "bad source id"))
            })?;
        let v = tok
            .next()
            .ok_or_else(|| parse_error(current, "missing target id"))
            .and_then(|s| {
                chunk::parse_u64(s).ok_or_else(|| parse_error(current, "bad target id"))
            })?;
        let w = match tok.next() {
            Some(s) => {
                let w =
                    chunk::parse_f64(s).ok_or_else(|| parse_error(current, "bad edge weight"))?;
                if !f64::is_finite(w) || w <= 0.0 {
                    return Err(parse_error(
                        current,
                        format!(
                            "edge weight `{}` must be positive and finite",
                            String::from_utf8_lossy(s)
                        ),
                    ));
                }
                w
            }
            None => 1.0,
        };
        out.push((current, u, v, w));
    }
    Ok(out)
}

/// Everything known after parsing, before CSR assembly.
struct ParsedEdgeList {
    builder: GraphBuilder,
    labels: Vec<u64>,
}

/// Tokenizes in parallel (up to `parts` chunks), then interns labels
/// sequentially in chunk = line order, preserving the first-seen
/// numbering of the sequential reader.
// audit:allow(budget-propagation): one bounded parallel tokenize per input file; the driver checks the budget between pipeline phases
fn parse_edge_list(bytes: &[u8], parts: usize) -> Result<ParsedEdgeList, IoError> {
    let chunks = chunk::chunk_lines(bytes, parts, 1);
    let per_chunk =
        chunk::first_error(chunks.into_par_iter().map(parse_chunk).collect::<Vec<_>>())?;

    let total: usize = per_chunk.iter().map(Vec::len).sum();
    let mut ids: FxHashMap<u64, Node> = FxHashMap::default();
    let mut labels: Vec<u64> = Vec::new();
    let mut edges: Vec<(Node, Node, f64)> = Vec::with_capacity(total);
    for (lineno, u, v, w) in per_chunk.into_iter().flatten() {
        let mut intern = |raw: u64| -> Node {
            *ids.entry(raw).or_insert_with(|| {
                // truncation is caught right after interning: we error out
                // once labels.len() exceeds the u32 id space
                let id = labels.len() as Node; // audit:allow(lossy-cast)
                labels.push(raw);
                id
            })
        };
        let cu = intern(u);
        let cv = intern(v);
        if labels.len() > u32::MAX as usize {
            return Err(parse_error(lineno, "more than u32::MAX distinct node ids"));
        }
        edges.push((cu, cv, w));
    }

    // Zero-copy handover: the interned edge vector moves into the builder;
    // validation and canonicalization run in place.
    let mut builder = GraphBuilder::new(labels.len());
    builder.extend_edges(edges);
    Ok(ParsedEdgeList { builder, labels })
}

/// Reads an edge list from a byte buffer with an explicit chunk count.
/// Exposed for the differential tests and benchmarks;
/// [`read_edge_list_from`] picks the chunk count automatically.
pub fn read_edge_list_chunked(bytes: &[u8], parts: usize) -> Result<EdgeListGraph, IoError> {
    let parsed = parse_edge_list(bytes, parts)?;
    Ok(EdgeListGraph {
        graph: parsed.builder.build(),
        labels: parsed.labels,
    })
}

/// Reads an edge list from an in-memory buffer with an automatically
/// chosen chunk count — the zero-copy core of [`read_edge_list_from`]
/// and [`read_edge_list`].
pub fn read_edge_list_bytes(bytes: &[u8]) -> Result<EdgeListGraph, IoError> {
    read_edge_list_chunked(bytes, chunk::auto_parts(bytes.len()))
}

/// Reads an edge list from a reader (buffer + chunked parse; see the
/// module docs).
pub fn read_edge_list_from(mut reader: impl Read) -> Result<EdgeListGraph, IoError> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    read_edge_list_bytes(&bytes)
}

/// The retained pre-parallel reader: line-by-line with a `String` per
/// line, sequential counting-sort assembly. The differential proptests
/// pin the chunked parser against this, and the `ingest` benchmarks use
/// it as the baseline.
pub fn read_edge_list_seq(bytes: &[u8]) -> Result<EdgeListGraph, IoError> {
    let mut ids: FxHashMap<u64, Node> = FxHashMap::default();
    let mut labels: Vec<u64> = Vec::new();
    let mut edges: Vec<(Node, Node, f64)> = Vec::new();

    let intern = |raw: u64, ids: &mut FxHashMap<u64, Node>, labels: &mut Vec<u64>| -> Node {
        *ids.entry(raw).or_insert_with(|| {
            // truncation is caught right after interning: the caller errors
            // out once labels.len() exceeds the u32 id space
            let id = labels.len() as Node; // audit:allow(lossy-cast)
            labels.push(raw);
            id
        })
    };

    for (i, line) in bytes.lines().enumerate() {
        let lineno = i + 1;
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut tok = t.split_whitespace();
        let u: u64 = tok
            .next()
            .ok_or_else(|| parse_error(lineno, "missing source id"))?
            .parse()
            .map_err(|_| parse_error(lineno, "bad source id"))?;
        let v: u64 = tok
            .next()
            .ok_or_else(|| parse_error(lineno, "missing target id"))?
            .parse()
            .map_err(|_| parse_error(lineno, "bad target id"))?;
        let w: f64 = match tok.next() {
            Some(s) => {
                let w = s
                    .parse()
                    .map_err(|_| parse_error(lineno, "bad edge weight"))?;
                if !f64::is_finite(w) || w <= 0.0 {
                    return Err(parse_error(
                        lineno,
                        format!("edge weight `{s}` must be positive and finite"),
                    ));
                }
                w
            }
            None => 1.0,
        };
        let cu = intern(u, &mut ids, &mut labels);
        let cv = intern(v, &mut ids, &mut labels);
        if labels.len() > u32::MAX as usize {
            return Err(parse_error(lineno, "more than u32::MAX distinct node ids"));
        }
        edges.push((cu, cv, w));
    }

    let mut b = GraphBuilder::with_capacity(labels.len(), edges.len());
    for (u, v, w) in edges {
        b.add_edge(u, v, w);
    }
    Ok(EdgeListGraph {
        graph: b.build_reference(),
        labels,
    })
}

/// Reads an edge list from a file path. Errors carry the path (and line).
pub fn read_edge_list(path: impl AsRef<Path>) -> Result<EdgeListGraph, IoError> {
    read_edge_list_recorded(path, &Recorder::disabled())
}

/// Reads an edge list from a file path, recording `ingest/parse` and
/// `ingest/build` phase spans (with byte/edge counters) on `recorder`.
/// With a disabled recorder this is exactly [`read_edge_list`].
pub fn read_edge_list_recorded(
    path: impl AsRef<Path>,
    recorder: &Recorder,
) -> Result<EdgeListGraph, IoError> {
    let path = path.as_ref();
    at_path(path, {
        (|| {
            let parse_span = recorder.span("ingest/parse");
            let bytes = std::fs::read(path).map_err(IoError::from)?;
            let parsed = parse_edge_list(&bytes, chunk::auto_parts(bytes.len()))?;
            parse_span.counter("bytes", bytes.len() as u64);
            parse_span.counter("pending_edges", parsed.builder.pending_edges() as u64);
            parse_span.close();

            let build_span = recorder.span("ingest/build");
            let graph = parsed.builder.build();
            build_span.counter("edges", graph.edge_count() as u64);
            build_span.close();
            Ok(EdgeListGraph {
                graph,
                labels: parsed.labels,
            })
        })()
    })
}

/// Writes a graph as an edge list (each undirected edge once, weights
/// emitted unless all are 1).
pub fn write_edge_list_to(g: &Graph, writer: impl Write) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    let weighted = g.nodes().any(|u| g.edges_of(u).any(|(_, wt)| wt != 1.0));
    writeln!(
        w,
        "# parcom edge list: {} nodes, {} edges",
        g.node_count(),
        g.edge_count()
    )?;
    let mut result = Ok(());
    g.for_edges(|u, v, wt| {
        if result.is_err() {
            return;
        }
        result = if weighted {
            writeln!(w, "{u} {v} {wt}")
        } else {
            writeln!(w, "{u} {v}")
        };
    });
    result?;
    Ok(())
}

/// Writes an edge list to a file path. Errors carry the path.
pub fn write_edge_list(g: &Graph, path: impl AsRef<Path>) -> Result<(), IoError> {
    let path = path.as_ref();
    at_path(
        path,
        std::fs::File::create(path)
            .map_err(IoError::from)
            .and_then(|f| write_edge_list_to(g, f)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_with_comments_and_gaps() {
        let input = "# SNAP-style\n10 20\n20 30\n% other comment\n10 30\n";
        let el = read_edge_list_from(input.as_bytes()).unwrap();
        assert_eq!(el.graph.node_count(), 3);
        assert_eq!(el.graph.edge_count(), 3);
        assert_eq!(el.labels, vec![10, 20, 30]);
    }

    #[test]
    fn parses_weights() {
        let el = read_edge_list_from("0 1 2.5\n1 2 0.5\n".as_bytes()).unwrap();
        assert_eq!(el.graph.edge_weight(0, 1), Some(2.5));
    }

    #[test]
    fn duplicate_edges_merge() {
        let el = read_edge_list_from("0 1\n1 0\n".as_bytes()).unwrap();
        assert_eq!(el.graph.edge_count(), 1);
        assert_eq!(el.graph.edge_weight(0, 1), Some(2.0));
    }

    #[test]
    fn chunked_matches_sequential_on_fixture() {
        let input = "# header\n10 20 1.5\n20 30\n% mid comment\n30 10 0.25\n\n40 10\n10 40\n";
        let reference = read_edge_list_seq(input.as_bytes()).unwrap();
        for parts in [1usize, 2, 3, 8] {
            let el = read_edge_list_chunked(input.as_bytes(), parts).unwrap();
            assert_eq!(el.labels, reference.labels, "parts={parts}");
            assert_eq!(el.graph.node_count(), reference.graph.node_count());
            for u in reference.graph.nodes() {
                let (t1, w1) = reference.graph.neighbors_and_weights(u);
                let (t2, w2) = el.graph.neighbors_and_weights(u);
                assert_eq!(t1, t2, "parts={parts}");
                assert_eq!(w1, w2, "parts={parts}");
            }
        }
    }

    #[test]
    fn error_lines_match_between_parsers() {
        let input = "# c\n0 1\n2 x\n1 2\n";
        let seq = read_edge_list_seq(input.as_bytes()).unwrap_err();
        for parts in [1usize, 2, 4] {
            let par = read_edge_list_chunked(input.as_bytes(), parts).unwrap_err();
            assert_eq!(par.line(), seq.line(), "parts={parts}");
            assert_eq!(par.to_string(), seq.to_string(), "parts={parts}");
        }
        assert_eq!(seq.line(), Some(3));
    }

    #[test]
    fn roundtrip() {
        let (g, _) = parcom_generators::ring_of_cliques(3, 4);
        let mut buf = Vec::new();
        write_edge_list_to(&g, &mut buf).unwrap();
        let el = read_edge_list_from(buf.as_slice()).unwrap();
        assert_eq!(el.graph.node_count(), g.node_count());
        assert_eq!(el.graph.edge_count(), g.edge_count());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(read_edge_list_from("0\n".as_bytes()).is_err());
        assert!(read_edge_list_from("a b\n".as_bytes()).is_err());
        assert!(read_edge_list_from("0 1 x\n".as_bytes()).is_err());
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let el = read_edge_list_from("# nothing\n".as_bytes()).unwrap();
        assert_eq!(el.graph.node_count(), 0);
    }

    #[test]
    fn recorded_read_captures_ingest_phases() {
        let dir = std::env::temp_dir().join("parcom_edgelist_recorded_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        std::fs::write(&path, "0 1\n1 2\n2 0\n").unwrap();
        let rec = Recorder::enabled();
        let el = read_edge_list_recorded(&path, &rec).unwrap();
        assert_eq!(el.graph.edge_count(), 3);
        let report = rec.finish("ingest");
        assert!(report.phase("ingest/parse").is_some());
        let build = report.phase("ingest/build").expect("build phase");
        assert_eq!(build.counter("edges"), Some(3));
        std::fs::remove_dir_all(&dir).ok();
    }
}
