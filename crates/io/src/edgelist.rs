//! Whitespace-separated edge lists (SNAP style).
//!
//! Each non-comment line is `u v [w]`. Node ids may be arbitrary
//! non-negative integers; they are compacted to `0..n` in first-seen order
//! (SNAP files routinely have gaps). Comment lines start with `#` or `%`.

use crate::{at_path, parse_error, IoError};
use parcom_graph::hashing::FxHashMap;
use parcom_graph::{Graph, GraphBuilder, Node};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Result of reading an edge list: the graph plus the original node labels
/// (indexed by compact node id).
#[derive(Debug)]
pub struct EdgeListGraph {
    /// The parsed graph with compact node ids.
    pub graph: Graph,
    /// `labels[v]` is the id node `v` had in the file.
    pub labels: Vec<u64>,
}

/// Reads an edge list from a reader.
pub fn read_edge_list_from(reader: impl Read) -> Result<EdgeListGraph, IoError> {
    let reader = BufReader::new(reader);
    let mut ids: FxHashMap<u64, Node> = FxHashMap::default();
    let mut labels: Vec<u64> = Vec::new();
    let mut edges: Vec<(Node, Node, f64)> = Vec::new();

    let intern = |raw: u64, ids: &mut FxHashMap<u64, Node>, labels: &mut Vec<u64>| -> Node {
        *ids.entry(raw).or_insert_with(|| {
            // truncation is caught right after interning: the caller errors
            // out once labels.len() exceeds the u32 id space
            let id = labels.len() as Node; // audit:allow(lossy-cast)
            labels.push(raw);
            id
        })
    };

    for (i, line) in reader.lines().enumerate() {
        let lineno = i + 1;
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut tok = t.split_whitespace();
        let u: u64 = tok
            .next()
            .ok_or_else(|| parse_error(lineno, "missing source id"))?
            .parse()
            .map_err(|_| parse_error(lineno, "bad source id"))?;
        let v: u64 = tok
            .next()
            .ok_or_else(|| parse_error(lineno, "missing target id"))?
            .parse()
            .map_err(|_| parse_error(lineno, "bad target id"))?;
        let w: f64 = match tok.next() {
            Some(s) => {
                let w = s
                    .parse()
                    .map_err(|_| parse_error(lineno, "bad edge weight"))?;
                if !f64::is_finite(w) || w <= 0.0 {
                    return Err(parse_error(
                        lineno,
                        format!("edge weight `{s}` must be positive and finite"),
                    ));
                }
                w
            }
            None => 1.0,
        };
        let cu = intern(u, &mut ids, &mut labels);
        let cv = intern(v, &mut ids, &mut labels);
        if labels.len() > u32::MAX as usize {
            return Err(parse_error(lineno, "more than u32::MAX distinct node ids"));
        }
        edges.push((cu, cv, w));
    }

    let mut b = GraphBuilder::with_capacity(labels.len(), edges.len());
    for (u, v, w) in edges {
        b.add_edge(u, v, w);
    }
    Ok(EdgeListGraph {
        graph: b.build(),
        labels,
    })
}

/// Reads an edge list from a file path. Errors carry the path (and line).
pub fn read_edge_list(path: impl AsRef<Path>) -> Result<EdgeListGraph, IoError> {
    let path = path.as_ref();
    at_path(
        path,
        std::fs::File::open(path)
            .map_err(IoError::from)
            .and_then(read_edge_list_from),
    )
}

/// Writes a graph as an edge list (each undirected edge once, weights
/// emitted unless all are 1).
pub fn write_edge_list_to(g: &Graph, writer: impl Write) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    let weighted = g.nodes().any(|u| g.edges_of(u).any(|(_, wt)| wt != 1.0));
    writeln!(
        w,
        "# parcom edge list: {} nodes, {} edges",
        g.node_count(),
        g.edge_count()
    )?;
    let mut result = Ok(());
    g.for_edges(|u, v, wt| {
        if result.is_err() {
            return;
        }
        result = if weighted {
            writeln!(w, "{u} {v} {wt}")
        } else {
            writeln!(w, "{u} {v}")
        };
    });
    result?;
    Ok(())
}

/// Writes an edge list to a file path. Errors carry the path.
pub fn write_edge_list(g: &Graph, path: impl AsRef<Path>) -> Result<(), IoError> {
    let path = path.as_ref();
    at_path(
        path,
        std::fs::File::create(path)
            .map_err(IoError::from)
            .and_then(|f| write_edge_list_to(g, f)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_with_comments_and_gaps() {
        let input = "# SNAP-style\n10 20\n20 30\n% other comment\n10 30\n";
        let el = read_edge_list_from(input.as_bytes()).unwrap();
        assert_eq!(el.graph.node_count(), 3);
        assert_eq!(el.graph.edge_count(), 3);
        assert_eq!(el.labels, vec![10, 20, 30]);
    }

    #[test]
    fn parses_weights() {
        let el = read_edge_list_from("0 1 2.5\n1 2 0.5\n".as_bytes()).unwrap();
        assert_eq!(el.graph.edge_weight(0, 1), Some(2.5));
    }

    #[test]
    fn duplicate_edges_merge() {
        let el = read_edge_list_from("0 1\n1 0\n".as_bytes()).unwrap();
        assert_eq!(el.graph.edge_count(), 1);
        assert_eq!(el.graph.edge_weight(0, 1), Some(2.0));
    }

    #[test]
    fn roundtrip() {
        let (g, _) = parcom_generators::ring_of_cliques(3, 4);
        let mut buf = Vec::new();
        write_edge_list_to(&g, &mut buf).unwrap();
        let el = read_edge_list_from(buf.as_slice()).unwrap();
        assert_eq!(el.graph.node_count(), g.node_count());
        assert_eq!(el.graph.edge_count(), g.edge_count());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(read_edge_list_from("0\n".as_bytes()).is_err());
        assert!(read_edge_list_from("a b\n".as_bytes()).is_err());
        assert!(read_edge_list_from("0 1 x\n".as_bytes()).is_err());
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let el = read_edge_list_from("# nothing\n".as_bytes()).unwrap();
        assert_eq!(el.graph.node_count(), 0);
    }
}
