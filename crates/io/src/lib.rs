#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # parcom-io — graph and partition I/O
//!
//! The formats the paper's corpus ships in, plus the export format of the
//! Fig. 11 visualization pipeline:
//!
//! * [`metis`] — the METIS/Chaco adjacency format used by the DIMACS
//!   collection (reader and writer, weighted and unweighted).
//! * [`edgelist`] — whitespace-separated edge lists (SNAP style), with
//!   comment handling and automatic node-id compaction.
//!
//! Both graph readers use a parallel byte-chunked ingest pipeline
//! (DESIGN.md §10): the file is read into one buffer, split on line
//! boundaries into per-core chunks, parsed with zero per-line allocation,
//! and assembled by the parallel CSR builder. The `*_recorded` entry
//! points expose `ingest/parse` / `ingest/build` phase timings through
//! `parcom-obs`. The pre-parallel readers are retained as
//! [`metis::read_metis_seq`] / [`edgelist::read_edge_list_seq`] and pinned
//! bit-identical by differential proptests.
//! * [`partition_io`] — one community id per line, aligned with node ids.
//! * [`dot`] — Graphviz export of community graphs (node size proportional
//!   to community size, like the paper's PGPgiantcompo drawings).
//! * [`gml`] — GML export with per-node community annotations for external
//!   visualization tools.

pub(crate) mod chunk;
pub mod dot;
pub mod edgelist;
pub mod gml;
pub mod metis;
pub mod partition_io;

pub use dot::write_community_graph_dot;
pub use edgelist::{read_edge_list, read_edge_list_recorded, write_edge_list};
pub use gml::{write_gml, write_gml_to};
pub use metis::{
    read_metis, read_metis_budgeted, read_metis_bytes_budgeted, read_metis_recorded, write_metis,
    write_metis_to,
};
pub use partition_io::{read_partition, write_partition};

use parcom_graph::Graph;
use parcom_guard::Budget;
use parcom_obs::Recorder;
use std::path::{Path, PathBuf};

/// Reads a graph from `path`, dispatching on the file extension —
/// `.metis`/`.graph` are METIS, everything else is treated as an edge
/// list — recording `ingest/parse`/`ingest/build` spans on `recorder`
/// and enforcing the budget's input limits: METIS headers exceeding them
/// are rejected *before* allocation, edge lists (which have no header to
/// admit against) after their parse. The single ingest entry point shared
/// by the CLI and `parcom-serve`, so both front ends admit and instrument
/// identically.
pub fn load_graph_auto(
    path: impl AsRef<Path>,
    recorder: &Recorder,
    budget: &Budget,
) -> Result<Graph, IoError> {
    let path = path.as_ref();
    let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
    if matches!(ext, "metis" | "graph") {
        read_metis_budgeted(path, recorder, budget)
    } else {
        let g = read_edge_list_recorded(path, recorder)?.graph;
        if budget.admits(g.node_count(), g.edge_count()).is_err() {
            return Err(IoError::parse(format!(
                "graph has {} nodes / {} edges, exceeding the ingest limit",
                g.node_count(),
                g.edge_count()
            ))
            .with_path(path));
        }
        Ok(g)
    }
}

/// The error of every reader and writer in this crate: one uniform shape
/// carrying *what* went wrong ([`kind`](Self::kind)) and *where* — the
/// file path (attached by the path-based entry points such as
/// [`read_metis`]) and the 1-based line number (attached by the parsers
/// when the offending line is known).
///
/// `Display` leads with the location in the conventional
/// `path:line: message` form, so errors surface directly usable context:
///
/// ```text
/// corpus/web.graph:17: bad neighbor id `x`
/// ```
#[derive(Debug)]
pub struct IoError {
    path: Option<PathBuf>,
    line: Option<usize>,
    kind: IoErrorKind,
}

/// What went wrong, independent of location.
#[derive(Debug)]
pub enum IoErrorKind {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input violates the expected format.
    Parse(String),
}

impl IoError {
    /// A parse error with no location yet.
    pub fn parse(message: impl Into<String>) -> Self {
        Self {
            path: None,
            line: None,
            kind: IoErrorKind::Parse(message.into()),
        }
    }

    /// Attaches the 1-based line number of the offending line.
    pub fn with_line(mut self, line: usize) -> Self {
        self.line = Some(line);
        self
    }

    /// Attaches the file the error occurred in. Called by the path-based
    /// entry points; an already-attached path is kept (innermost wins).
    pub fn with_path(mut self, path: impl Into<PathBuf>) -> Self {
        if self.path.is_none() {
            self.path = Some(path.into());
        }
        self
    }

    /// The file the error occurred in, when known.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// The 1-based line number of the offending line, when known.
    pub fn line(&self) -> Option<usize> {
        self.line
    }

    /// What went wrong.
    pub fn kind(&self) -> &IoErrorKind {
        &self.kind
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (&self.path, self.line) {
            (Some(p), Some(l)) => write!(f, "{}:{l}: ", p.display())?,
            (Some(p), None) => write!(f, "{}: ", p.display())?,
            (None, Some(l)) => write!(f, "line {l}: ")?,
            (None, None) => {}
        }
        match &self.kind {
            IoErrorKind::Io(e) => write!(f, "i/o error: {e}"),
            IoErrorKind::Parse(message) => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.kind {
            IoErrorKind::Io(e) => Some(e),
            IoErrorKind::Parse(_) => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        Self {
            path: None,
            line: None,
            kind: IoErrorKind::Io(e),
        }
    }
}

/// A parse error at a known line; `line == 0` means "no meaningful line"
/// (e.g. whole-file consistency checks).
pub(crate) fn parse_error(line: usize, message: impl Into<String>) -> IoError {
    let e = IoError::parse(message);
    if line > 0 {
        e.with_line(line)
    } else {
        e
    }
}

/// Attaches a path to the error of a fallible I/O operation — the common
/// pattern of every path-based entry point in this crate.
pub(crate) fn at_path<T>(path: &Path, result: Result<T, IoError>) -> Result<T, IoError> {
    result.map_err(|e| e.with_path(path))
}
