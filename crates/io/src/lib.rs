#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # parcom-io — graph and partition I/O
//!
//! The formats the paper's corpus ships in, plus the export format of the
//! Fig. 11 visualization pipeline:
//!
//! * [`metis`] — the METIS/Chaco adjacency format used by the DIMACS
//!   collection (reader and writer, weighted and unweighted).
//! * [`edgelist`] — whitespace-separated edge lists (SNAP style), with
//!   comment handling and automatic node-id compaction.
//! * [`partition_io`] — one community id per line, aligned with node ids.
//! * [`dot`] — Graphviz export of community graphs (node size proportional
//!   to community size, like the paper's PGPgiantcompo drawings).
//! * [`gml`] — GML export with per-node community annotations for external
//!   visualization tools.

pub mod dot;
pub mod edgelist;
pub mod gml;
pub mod metis;
pub mod partition_io;

pub use dot::write_community_graph_dot;
pub use edgelist::{read_edge_list, write_edge_list};
pub use gml::{write_gml, write_gml_to};
pub use metis::{read_metis, write_metis};
pub use partition_io::{read_partition, write_partition};

/// Errors produced by the readers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input violates the expected format.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

pub(crate) fn parse_error(line: usize, message: impl Into<String>) -> IoError {
    IoError::Parse {
        line,
        message: message.into(),
    }
}
