// The workspace-wide no-unsafe rule, with one audited exception: the
// `mmap` feature compiles `src/mmap.rs` (see DESIGN.md §15). `forbid`
// cannot be overridden even by that one module, so the feature swaps it
// for `deny`, which `mmap.rs` alone is allowed to lift; every other
// module stays unsafe-free under both lints, and `parcom-audit` flags any
// unsafe outside the allowlisted file.
#![cfg_attr(not(feature = "mmap"), forbid(unsafe_code))]
#![cfg_attr(feature = "mmap", deny(unsafe_code))]
#![warn(missing_docs)]

//! # parcom-io — graph and partition I/O
//!
//! The formats the paper's corpus ships in, plus the export format of the
//! Fig. 11 visualization pipeline:
//!
//! * [`metis`] — the METIS/Chaco adjacency format used by the DIMACS
//!   collection (reader and writer, weighted and unweighted).
//! * [`edgelist`] — whitespace-separated edge lists (SNAP style), with
//!   comment handling and automatic node-id compaction.
//!
//! Both graph readers use a parallel byte-chunked ingest pipeline
//! (DESIGN.md §10): the file is read into one buffer, split on line
//! boundaries into per-core chunks, parsed with zero per-line allocation,
//! and assembled by the parallel CSR builder. The `*_recorded` entry
//! points expose `ingest/parse` / `ingest/build` phase timings through
//! `parcom-obs`. The pre-parallel readers are retained as
//! [`metis::read_metis_seq`] / [`edgelist::read_edge_list_seq`] and pinned
//! bit-identical by differential proptests.
//! * [`binfmt`] — the `parcom-graph-bin/v1` binary graph format (`.pcg`):
//!   checksummed, section-tabled CSR with the derived caches stored, so
//!   reopening a converted graph is a contiguous read plus word-wise
//!   conversion — no parsing, no CSR assembly (DESIGN.md §15). The `mmap`
//!   feature maps instead of reading ([`mmap`]), the workspace's one
//!   audited `unsafe` module.
//! * [`partition_io`] — one community id per line, aligned with node ids.
//! * [`dot`] — Graphviz export of community graphs (node size proportional
//!   to community size, like the paper's PGPgiantcompo drawings).
//! * [`gml`] — GML export with per-node community annotations for external
//!   visualization tools.

pub mod binfmt;
pub(crate) mod chunk;
pub mod corpus;
pub mod dot;
pub mod edgelist;
pub mod gml;
pub mod metis;
#[cfg(feature = "mmap")]
pub mod mmap;
pub mod partition_io;

pub use binfmt::{read_pcg_budgeted, write_pcg, PcgGraph};
pub use corpus::{scan_corpus, state_paths, CorpusEntry, StatePaths};
pub use dot::write_community_graph_dot;
pub use edgelist::{read_edge_list, read_edge_list_recorded, write_edge_list};
pub use gml::{write_gml, write_gml_to};
pub use metis::{
    read_metis, read_metis_budgeted, read_metis_bytes_budgeted, read_metis_recorded, write_metis,
    write_metis_to,
};
pub use partition_io::{read_partition, write_partition};

use parcom_graph::relabel::Relabeling;
use parcom_graph::Graph;
use parcom_guard::Budget;
use parcom_obs::Recorder;
use std::io::Read;
use std::path::{Path, PathBuf};

/// Which on-disk format [`load_graph_auto`] found.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphFormat {
    /// `parcom-graph-bin/v1` binary ([`binfmt`]), detected by magic.
    PcgBinary,
    /// METIS/Chaco adjacency text.
    Metis,
    /// Whitespace-separated edge list.
    EdgeList,
}

impl GraphFormat {
    /// Stable lowercase name, used in reports and daemon responses.
    pub fn as_str(self) -> &'static str {
        match self {
            GraphFormat::PcgBinary => "pcg",
            GraphFormat::Metis => "metis",
            GraphFormat::EdgeList => "edgelist",
        }
    }
}

/// What [`load_graph_auto`] returns: the graph, the relabeling stored
/// with it (binary files written with `parcom convert --relabel`), and
/// the detected format.
#[derive(Debug)]
pub struct LoadedGraph {
    /// The graph, in the file's (possibly relabeled) id space.
    pub graph: Graph,
    /// Permutation mapping original ids to the graph's ids, if any.
    /// Callers that emit partitions must map them back through
    /// [`Relabeling::to_original`].
    pub relabeling: Option<Relabeling>,
    /// The format the file was detected as.
    pub format: GraphFormat,
}

/// Reads a graph from `path`, sniffing the format by content first and
/// extension second: a file starting with the `.pcg` magic bytes is
/// binary *whatever its name*; otherwise `.metis`/`.graph`/`.pcg` parse
/// as METIS (a text graph renamed `.pcg` still loads) and everything else
/// as an edge list. Ingest spans (`ingest/load` or
/// `ingest/parse`/`ingest/build`) are recorded on `recorder`, and the
/// budget's input limits are enforced: METIS and binary headers are
/// rejected *before* allocation, edge lists (which have no header to
/// admit against) after their parse. The single ingest entry point shared
/// by the CLI and `parcom-serve`, so both front ends admit and instrument
/// identically.
pub fn load_graph_auto(
    path: impl AsRef<Path>,
    recorder: &Recorder,
    budget: &Budget,
) -> Result<LoadedGraph, IoError> {
    let path = path.as_ref();
    if at_path(path, sniff_pcg(path))? {
        let loaded = binfmt::read_pcg_budgeted(path, recorder, budget)?;
        return Ok(LoadedGraph {
            graph: loaded.graph,
            relabeling: loaded.relabeling,
            format: GraphFormat::PcgBinary,
        });
    }
    let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
    if matches!(ext, "metis" | "graph" | "pcg") {
        let graph = read_metis_budgeted(path, recorder, budget)?;
        Ok(LoadedGraph {
            graph,
            relabeling: None,
            format: GraphFormat::Metis,
        })
    } else {
        let graph = read_edge_list_recorded(path, recorder)?.graph;
        if budget
            .admits(graph.node_count(), graph.edge_count())
            .is_err()
        {
            return Err(IoError::parse(format!(
                "graph has {} nodes / {} edges, exceeding the ingest limit",
                graph.node_count(),
                graph.edge_count()
            ))
            .with_path(path));
        }
        Ok(LoadedGraph {
            graph,
            relabeling: None,
            format: GraphFormat::EdgeList,
        })
    }
}

/// Reads just enough of `path` to test for the binary magic. A file
/// shorter than the magic is simply not binary, not an error.
fn sniff_pcg(path: &Path) -> Result<bool, IoError> {
    let mut file = std::fs::File::open(path).map_err(IoError::from)?;
    let mut head = [0u8; 8];
    let mut filled = 0;
    while filled < head.len() {
        let got = file.read(&mut head[filled..]).map_err(IoError::from)?;
        if got == 0 {
            return Ok(false);
        }
        filled += got;
    }
    Ok(binfmt::is_pcg_magic(&head))
}

/// The error of every reader and writer in this crate: one uniform shape
/// carrying *what* went wrong ([`kind`](Self::kind)) and *where* — the
/// file path (attached by the path-based entry points such as
/// [`read_metis`]) and the 1-based line number (attached by the parsers
/// when the offending line is known).
///
/// `Display` leads with the location in the conventional
/// `path:line: message` form, so errors surface directly usable context:
///
/// ```text
/// corpus/web.graph:17: bad neighbor id `x`
/// ```
#[derive(Debug)]
pub struct IoError {
    path: Option<PathBuf>,
    line: Option<usize>,
    kind: IoErrorKind,
}

/// What went wrong, independent of location.
#[derive(Debug)]
pub enum IoErrorKind {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input violates the expected format.
    Parse(String),
}

impl IoError {
    /// A parse error with no location yet.
    pub fn parse(message: impl Into<String>) -> Self {
        Self {
            path: None,
            line: None,
            kind: IoErrorKind::Parse(message.into()),
        }
    }

    /// Attaches the 1-based line number of the offending line.
    pub fn with_line(mut self, line: usize) -> Self {
        self.line = Some(line);
        self
    }

    /// Attaches the file the error occurred in. Called by the path-based
    /// entry points; an already-attached path is kept (innermost wins).
    pub fn with_path(mut self, path: impl Into<PathBuf>) -> Self {
        if self.path.is_none() {
            self.path = Some(path.into());
        }
        self
    }

    /// The file the error occurred in, when known.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// The 1-based line number of the offending line, when known.
    pub fn line(&self) -> Option<usize> {
        self.line
    }

    /// What went wrong.
    pub fn kind(&self) -> &IoErrorKind {
        &self.kind
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (&self.path, self.line) {
            (Some(p), Some(l)) => write!(f, "{}:{l}: ", p.display())?,
            (Some(p), None) => write!(f, "{}: ", p.display())?,
            (None, Some(l)) => write!(f, "line {l}: ")?,
            (None, None) => {}
        }
        match &self.kind {
            IoErrorKind::Io(e) => write!(f, "i/o error: {e}"),
            IoErrorKind::Parse(message) => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.kind {
            IoErrorKind::Io(e) => Some(e),
            IoErrorKind::Parse(_) => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        Self {
            path: None,
            line: None,
            kind: IoErrorKind::Io(e),
        }
    }
}

/// A parse error at a known line; `line == 0` means "no meaningful line"
/// (e.g. whole-file consistency checks).
pub(crate) fn parse_error(line: usize, message: impl Into<String>) -> IoError {
    let e = IoError::parse(message);
    if line > 0 {
        e.with_line(line)
    } else {
        e
    }
}

/// Attaches a path to the error of a fallible I/O operation — the common
/// pattern of every path-based entry point in this crate.
pub(crate) fn at_path<T>(path: &Path, result: Result<T, IoError>) -> Result<T, IoError> {
    result.map_err(|e| e.with_path(path))
}
