//! GML (Graph Modelling Language) export.
//!
//! GML is the interchange format of the visualization ecosystem the paper's
//! qualitative analysis leans on (Fig. 11 was rendered with standard graph
//! drawing tools); exporting a graph together with its community assignment
//! lets any GML-aware tool color nodes by community.

use crate::IoError;
use parcom_graph::{Graph, Partition};
use std::io::{BufWriter, Write};
use std::path::Path;

/// Writes `g` in GML, optionally annotating each node with its community.
pub fn write_gml_to(
    g: &Graph,
    communities: Option<&Partition>,
    writer: impl Write,
) -> Result<(), IoError> {
    if let Some(p) = communities {
        assert_eq!(
            p.len(),
            g.node_count(),
            "partition does not cover the graph"
        );
    }
    let mut w = BufWriter::new(writer);
    writeln!(w, "graph [")?;
    writeln!(w, "  directed 0")?;
    for u in g.nodes() {
        writeln!(w, "  node [")?;
        writeln!(w, "    id {u}")?;
        if let Some(p) = communities {
            writeln!(w, "    community {}", p.subset_of(u))?;
        }
        writeln!(w, "  ]")?;
    }
    let mut result = Ok(());
    g.for_edges(|u, v, wt| {
        if result.is_err() {
            return;
        }
        result = (|| -> std::io::Result<()> {
            writeln!(w, "  edge [")?;
            writeln!(w, "    source {u}")?;
            writeln!(w, "    target {v}")?;
            if wt != 1.0 {
                writeln!(w, "    weight {wt}")?;
            }
            writeln!(w, "  ]")
        })();
    });
    result?;
    writeln!(w, "]")?;
    Ok(())
}

/// Writes GML to a file path. Errors carry the path.
pub fn write_gml(
    g: &Graph,
    communities: Option<&Partition>,
    path: impl AsRef<Path>,
) -> Result<(), IoError> {
    let path = path.as_ref();
    crate::at_path(
        path,
        std::fs::File::create(path)
            .map_err(IoError::from)
            .and_then(|f| write_gml_to(g, communities, f)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcom_graph::GraphBuilder;

    fn render(g: &Graph, p: Option<&Partition>) -> String {
        let mut buf = Vec::new();
        write_gml_to(g, p, &mut buf).unwrap();
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn emits_nodes_and_edges() {
        let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 2)]);
        let gml = render(&g, None);
        assert_eq!(gml.matches("node [").count(), 3);
        assert_eq!(gml.matches("edge [").count(), 2);
        assert!(gml.starts_with("graph ["));
        assert!(gml.trim_end().ends_with(']'));
        assert!(!gml.contains("community"));
    }

    #[test]
    fn annotates_communities() {
        let g = GraphBuilder::from_edges(2, &[(0, 1)]);
        let p = Partition::from_vec(vec![4, 4]);
        let gml = render(&g, Some(&p));
        assert_eq!(gml.matches("community 4").count(), 2);
    }

    #[test]
    fn weights_emitted_only_when_nontrivial() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 2.5);
        let gml = render(&b.build(), None);
        assert!(gml.contains("weight 2.5"));
        let g2 = GraphBuilder::from_edges(2, &[(0, 1)]);
        assert!(!render(&g2, None).contains("weight"));
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        let gml = render(&g, None);
        assert!(gml.contains("directed 0"));
    }

    #[test]
    #[should_panic(expected = "partition does not cover")]
    fn rejects_mismatched_partition() {
        let g = GraphBuilder::from_edges(2, &[(0, 1)]);
        let p = Partition::singleton(5);
        render(&g, Some(&p));
    }
}
