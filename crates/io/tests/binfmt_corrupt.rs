//! The corrupt-input matrix for the binary graph loader, mirroring the
//! METIS `error_context` contract: every failure mode is a typed
//! [`IoError`] whose `Display` leads with the file path, and no corruption
//! reaches [`parcom_graph::Graph`] construction. Plus the format-sniffing
//! contract of [`load_graph_auto`]: dispatch is by magic bytes first, so
//! misnamed files load as what they *are*.

use parcom_graph::GraphBuilder;
use parcom_guard::Budget;
use parcom_io::binfmt::{self, read_pcg_budgeted};
use parcom_io::{load_graph_auto, write_pcg, GraphFormat, IoError, IoErrorKind};
use parcom_obs::Recorder;
use std::path::{Path, PathBuf};

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("parcom_binfmt_corrupt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small weighted graph with a self-loop, serialized to `name` under the
/// temp dir, returning the path and the pristine bytes.
fn valid_pcg(name: &str) -> (PathBuf, Vec<u8>) {
    let mut b = GraphBuilder::new(8);
    for u in 0..7u32 {
        b.add_unweighted_edge(u, u + 1);
    }
    b.add_edge(0, 4, 2.5);
    b.add_edge(3, 3, 0.5);
    let g = b.build();
    let path = temp_dir().join(name);
    write_pcg(&g, None, &path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    (path, bytes)
}

fn load(path: &Path) -> Result<binfmt::PcgGraph, IoError> {
    read_pcg_budgeted(path, &Recorder::disabled(), &Budget::unlimited())
}

/// The error must be a parse error carrying the path, displayed as
/// `path: message`, with `message` containing `needle`.
fn assert_corrupt(err: &IoError, path: &Path, needle: &str) {
    assert_eq!(err.path(), Some(path), "missing path context: {err}");
    assert!(
        matches!(err.kind(), IoErrorKind::Parse(_)),
        "wrong kind: {err}"
    );
    let display = err.to_string();
    let prefix = format!("{}: ", path.display());
    assert!(
        display.starts_with(&prefix),
        "`{display}` does not start with `{prefix}`"
    );
    assert!(
        display.contains(needle),
        "`{display}` does not mention `{needle}`"
    );
}

#[test]
fn truncated_below_the_fixed_header() {
    let (path, bytes) = valid_pcg("trunc_head.pcg");
    std::fs::write(&path, &bytes[..40]).unwrap();
    assert_corrupt(&load(&path).unwrap_err(), &path, "truncated");
}

#[test]
fn truncated_inside_the_section_table() {
    let (path, bytes) = valid_pcg("trunc_table.pcg");
    std::fs::write(&path, &bytes[..binfmt::MAGIC.len() + 60]).unwrap();
    assert_corrupt(&load(&path).unwrap_err(), &path, "truncated");
}

#[test]
fn wrong_magic() {
    let (path, mut bytes) = valid_pcg("magic.pcg");
    bytes[0] ^= 0xff;
    std::fs::write(&path, &bytes).unwrap();
    assert_corrupt(&load(&path).unwrap_err(), &path, "bad magic");
}

#[test]
fn unsupported_version() {
    let (path, mut bytes) = valid_pcg("version.pcg");
    bytes[8] = 99; // version field, checked before the header checksum
    std::fs::write(&path, &bytes).unwrap();
    let err = load(&path).unwrap_err();
    assert_corrupt(&err, &path, "unsupported binary graph version 99");
    assert!(err.to_string().contains(binfmt::SCHEMA));
}

#[test]
fn implausible_section_count() {
    let (path, mut bytes) = valid_pcg("seccount.pcg");
    bytes[12] = 0xff; // section count, checked before the header checksum
    std::fs::write(&path, &bytes).unwrap();
    assert_corrupt(&load(&path).unwrap_err(), &path, "sections");
}

#[test]
fn header_corruption_fails_the_header_checksum() {
    let (path, mut bytes) = valid_pcg("headsum.pcg");
    bytes[24] ^= 0x01; // node count inside the checksummed header
    std::fs::write(&path, &bytes).unwrap();
    assert_corrupt(&load(&path).unwrap_err(), &path, "header checksum mismatch");
}

#[test]
fn payload_corruption_fails_the_data_checksum() {
    let (path, mut bytes) = valid_pcg("bodysum.pcg");
    let len = bytes.len();
    bytes[len / 2] ^= 0x10; // some section payload byte
    std::fs::write(&path, &bytes).unwrap();
    assert_corrupt(&load(&path).unwrap_err(), &path, "checksum mismatch");
}

#[test]
fn section_overflowing_the_file_is_rejected() {
    let (path, bytes) = valid_pcg("overflow.pcg");
    // Cut the body short: the header (its checksum covers only itself)
    // stays valid, so the table now points past the end of the file.
    std::fs::write(&path, &bytes[..bytes.len() - 24]).unwrap();
    assert_corrupt(&load(&path).unwrap_err(), &path, "overflows the file");
}

#[test]
fn ingest_limit_rejects_the_header_with_path_context() {
    let (path, _) = valid_pcg("limit.pcg");
    let tight = Budget::unlimited().with_input_limits(2, 1);
    let err = read_pcg_budgeted(&path, &Recorder::disabled(), &tight).unwrap_err();
    assert_corrupt(&err, &path, "exceeding the ingest limit");
}

// ---------------------------------------------------------------------------
// Format sniffing: magic bytes first, extension second.

#[test]
fn pcg_named_metis_text_loads_as_metis() {
    let path = temp_dir().join("actually_text.pcg");
    std::fs::write(&path, "3 2\n2\n1 3\n2\n").unwrap();
    let loaded = load_graph_auto(&path, &Recorder::disabled(), &Budget::unlimited()).unwrap();
    assert_eq!(loaded.format, GraphFormat::Metis);
    assert_eq!(loaded.graph.node_count(), 3);
    assert_eq!(loaded.graph.edge_count(), 2);
    assert!(loaded.relabeling.is_none());
}

#[test]
fn metis_named_binary_loads_as_binary() {
    let (pcg_path, bytes) = valid_pcg("real_binary.pcg");
    let disguised = temp_dir().join("disguised.metis");
    std::fs::write(&disguised, &bytes).unwrap();
    let loaded = load_graph_auto(&disguised, &Recorder::disabled(), &Budget::unlimited()).unwrap();
    assert_eq!(loaded.format, GraphFormat::PcgBinary);
    let direct = load(&pcg_path).unwrap();
    assert_eq!(loaded.graph.node_count(), direct.graph.node_count());
    assert_eq!(loaded.graph.edge_count(), direct.graph.edge_count());
}

#[test]
fn unknown_extension_without_magic_is_an_edge_list() {
    let path = temp_dir().join("plain.edges");
    std::fs::write(&path, "0 1\n1 2\n").unwrap();
    let loaded = load_graph_auto(&path, &Recorder::disabled(), &Budget::unlimited()).unwrap();
    assert_eq!(loaded.format, GraphFormat::EdgeList);
    assert_eq!(loaded.graph.edge_count(), 2);
}

#[test]
fn short_file_sniffs_as_text_not_an_error() {
    // Shorter than the magic: sniffing must not fail, just fall through.
    let path = temp_dir().join("tiny.pcg");
    std::fs::write(&path, "1 0\n\n").unwrap();
    let loaded = load_graph_auto(&path, &Recorder::disabled(), &Budget::unlimited()).unwrap();
    assert_eq!(loaded.format, GraphFormat::Metis);
    assert_eq!(loaded.graph.node_count(), 1);
}

#[test]
fn relabeled_file_roundtrips_through_auto_loading() {
    use parcom_graph::relabel::Relabeling;
    let mut b = GraphBuilder::new(6);
    for u in 0..5u32 {
        b.add_unweighted_edge(u, u + 1);
    }
    b.add_unweighted_edge(0, 2);
    b.add_unweighted_edge(0, 3);
    let g = b.build();
    let r = Relabeling::degree_ordered(&g);
    let h = r.apply(&g);
    let path = temp_dir().join("relabeled_auto.pcg");
    write_pcg(&h, Some(&r), &path).unwrap();

    let loaded = load_graph_auto(&path, &Recorder::disabled(), &Budget::unlimited()).unwrap();
    assert_eq!(loaded.format, GraphFormat::PcgBinary);
    let stored = loaded
        .relabeling
        .expect("relabeling must survive the roundtrip");
    assert_eq!(stored.new_of_old(), r.new_of_old());
    // The loaded graph is the relabeled view.
    assert_eq!(loaded.graph.degree(0), g.degree(r.to_old_id(0)));
}
