//! Abort-path tests for the `io/chunk-parse` fault-injection site: a panic
//! mid-parse unwinds without wedging the reader, and a cooperative cancel
//! planted during ingest aborts the guarded detection that follows.
//!
//! Compiled only under `--features fault-inject`.
#![cfg(feature = "fault-inject")]

use parcom_core::{Budget, CancelToken, CommunityDetector, Plm, Termination};
use parcom_guard::fault::{serial_guard, FaultAction, FaultPlan};
use parcom_io::metis::read_metis_from;
use std::panic::catch_unwind;

const FILE: &str = "4 4\n2 3\n1 3\n1 2 4\n3\n";

#[test]
fn chunk_parse_panic_unwinds_and_reader_recovers() {
    let _g = serial_guard();
    FaultPlan::clear();
    FaultPlan::arm("io/chunk-parse", 1, FaultAction::Panic);
    assert!(catch_unwind(|| read_metis_from(FILE.as_bytes())).is_err());
    FaultPlan::clear();
    // the unwind left nothing poisoned: the same parse succeeds
    let g = read_metis_from(FILE.as_bytes()).unwrap();
    assert_eq!(g.node_count(), 4);
    assert_eq!(g.edge_count(), 4);
}

#[test]
fn chunk_parse_cancel_aborts_the_downstream_run() {
    let _g = serial_guard();
    FaultPlan::clear();
    let token = CancelToken::new();
    FaultPlan::arm("io/chunk-parse", 1, FaultAction::Cancel(token.clone()));
    // the cancel is cooperative: ingest itself completes...
    let g = read_metis_from(FILE.as_bytes()).unwrap();
    assert!(token.is_cancelled());
    assert_eq!(FaultPlan::crossings("io/chunk-parse"), 1);
    // ...and the guarded detection sharing the token aborts at preflight
    // with a well-formed degraded result
    let budget = Budget::unlimited().with_token(token);
    let r = Plm::new().detect_guarded(&g, &budget);
    assert_eq!(r.termination, Termination::Cancelled);
    assert_eq!(r.partition.len(), g.node_count());
    assert_eq!(r.report.termination.as_deref(), Some("cancelled"));
    FaultPlan::clear();
}

#[test]
fn derived_k_matrix_is_deterministic_across_sites() {
    // the seeded K derivation used by the fault matrix stays stable and in
    // range for every planted site
    for seed in 0..8u64 {
        for site in [
            "io/chunk-parse",
            "graph/csr-assembly",
            "graph/coarsen-merge",
            "core/epp-member",
        ] {
            let k = FaultPlan::derive_k(seed, site, 5);
            assert_eq!(k, FaultPlan::derive_k(seed, site, 5));
            assert!((1..=5).contains(&k));
        }
    }
}
