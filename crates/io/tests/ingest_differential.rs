//! Differential property tests for the parallel ingest pipeline: on any
//! input — valid or corrupted — the chunked parsers must behave
//! *identically* to the retained sequential references for every chunk
//! count: same graph bit-for-bit (offsets, targets, weight bit patterns,
//! label order) on success, same error line and message on failure.

use parcom_graph::{Graph, GraphBuilder};
use parcom_io::edgelist::{read_edge_list_chunked, read_edge_list_seq};
use parcom_io::metis::{read_metis_chunked, read_metis_seq};
use parcom_io::IoError;
use proptest::prelude::*;

const PARTS: [usize; 4] = [1, 2, 3, 8];

/// Exact CSR equality: same adjacency structure and same weight bits.
fn assert_bit_identical(a: &Graph, b: &Graph, ctx: &str) {
    assert_eq!(a.node_count(), b.node_count(), "{ctx}: node count");
    assert_eq!(a.edge_count(), b.edge_count(), "{ctx}: edge count");
    for u in a.nodes() {
        let (ta, wa) = a.neighbors_and_weights(u);
        let (tb, wb) = b.neighbors_and_weights(u);
        assert_eq!(ta, tb, "{ctx}: row {u} targets differ");
        let bits = |ws: &[f64]| ws.iter().map(|w| w.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(wa), bits(wb), "{ctx}: row {u} weight bits differ");
    }
}

/// Same outcome: both Ok with bit-identical graphs, or both Err with the
/// same line and message.
fn assert_same_outcome(seq: &Result<Graph, IoError>, par: &Result<Graph, IoError>, ctx: &str) {
    match (seq, par) {
        (Ok(a), Ok(b)) => assert_bit_identical(a, b, ctx),
        (Err(a), Err(b)) => {
            assert_eq!(a.line(), b.line(), "{ctx}: error lines differ");
            assert_eq!(a.to_string(), b.to_string(), "{ctx}: error messages differ");
        }
        (a, b) => panic!(
            "{ctx}: outcomes diverge: seq={:?} par={:?}",
            a.as_ref().map(|g| g.edge_count()),
            b.as_ref().map(|g| g.edge_count())
        ),
    }
}

/// A weight grid coarse enough to render/reparse exactly yet including
/// magnitudes where duplicate-summation order shows in the mantissa.
fn arb_weight() -> impl Strategy<Value = f64> {
    (0u32..102u32).prop_map(|w| match w {
        100 => 1e-17,
        101 => 0.1,
        w => (w + 1) as f64 / 10.0,
    })
}

/// `(n, edges, weighted, comment_every)` for a well-formed METIS file:
/// duplicates and self-loops allowed (they exercise the merge path), with
/// comment lines sprinkled through the adjacency body.
fn arb_metis() -> impl Strategy<Value = (usize, Vec<(u32, u32, f64)>, bool, usize)> {
    (1usize..30).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, arb_weight());
        (
            proptest::collection::vec(edge, 0..(4 * n)),
            0u32..2,
            0usize..4,
        )
            .prop_map(move |(edges, w, ce)| (n, edges, w == 1, ce))
    })
}

/// Renders a METIS file whose header edge count matches what the parsers
/// will produce after duplicate merging. Empty rows (isolated nodes) come
/// out as blank lines, so blank-line handling is covered for free.
fn render_metis(
    n: usize,
    edges: &[(u32, u32, f64)],
    weighted: bool,
    comment_every: usize,
) -> String {
    let mut adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
    for &(u, v, w) in edges {
        let w = if weighted { w } else { 1.0 };
        adj[u as usize].push((v, w));
        if u != v {
            adj[v as usize].push((u, w));
        }
    }
    let mut b = GraphBuilder::new(n);
    for &(u, v, w) in edges {
        b.add_edge(u, v, if weighted { w } else { 1.0 });
    }
    let m = b.build().edge_count();

    let mut s = String::new();
    s.push_str("% generated\n");
    s.push_str(&format!("{n} {m}{}\n", if weighted { " 1" } else { "" }));
    for (i, row) in adj.iter().enumerate() {
        if comment_every > 0 && i % comment_every == 0 {
            s.push_str("% interleaved comment\n");
        }
        let toks: Vec<String> = row
            .iter()
            .map(|&(v, w)| {
                if weighted {
                    format!("{} {}", v + 1, w)
                } else {
                    format!("{}", v + 1)
                }
            })
            .collect();
        s.push_str(&toks.join(" "));
        s.push('\n');
    }
    s
}

/// `(edges-with-optional-weight, comment_style)` for an edge-list file
/// with gappy labels, comments, and blank lines.
fn arb_edgelist() -> impl Strategy<Value = (Vec<(u64, u64, Option<f64>)>, usize)> {
    let edge = (0u64..40, 0u64..40, (0u32..3, arb_weight()))
        .prop_map(|(u, v, (k, w))| (u, v, if k == 0 { None } else { Some(w) }));
    (proptest::collection::vec(edge, 0..80), 0usize..4)
}

fn render_edgelist(edges: &[(u64, u64, Option<f64>)], comment_every: usize) -> String {
    let mut s = String::from("# generated edge list\n");
    for (i, &(u, v, w)) in edges.iter().enumerate() {
        if comment_every > 0 && i % comment_every == 0 {
            s.push_str(if i % 2 == 0 { "% comment\n" } else { "\n" });
        }
        // sparse labels: gaps force the id-compaction path
        let (u, v) = (u * 7, v * 7 + 3);
        match w {
            Some(w) => s.push_str(&format!("{u} {v} {w}\n")),
            None => s.push_str(&format!("{u} {v}\n")),
        }
    }
    s
}

/// Corrupts one line of a rendered file so the error paths get compared
/// too.
fn corrupt(text: &str, line_pick: usize, kind: usize) -> String {
    let lines: Vec<&str> = text.lines().collect();
    if lines.is_empty() {
        return "x x".to_string();
    }
    let at = line_pick % lines.len();
    let mut out = Vec::new();
    for (i, l) in lines.iter().enumerate() {
        if i == at {
            match kind {
                0 => out.push("x x"),
                1 => out.push("1 nope"),
                2 => continue, // drop the line entirely
                _ => out.push("999999999"),
            }
        } else {
            out.push(l);
        }
    }
    out.join("\n") + "\n"
}

proptest! {
    #[test]
    fn metis_chunked_matches_sequential((n, edges, weighted, ce) in arb_metis()) {
        let text = render_metis(n, &edges, weighted, ce);
        let seq = read_metis_seq(text.as_bytes());
        prop_assert!(seq.is_ok(), "generator must render valid files: {:?}", seq.err().map(|e| e.to_string()));
        for parts in PARTS {
            let par = read_metis_chunked(text.as_bytes(), parts);
            assert_same_outcome(&seq, &par, &format!("parts={parts}"));
        }
    }

    #[test]
    fn metis_errors_match_sequential(
        (n, edges, weighted, ce) in arb_metis(),
        line_pick in 0usize..100,
        kind in 0usize..4,
    ) {
        let text = corrupt(&render_metis(n, &edges, weighted, ce), line_pick, kind);
        let seq = read_metis_seq(text.as_bytes());
        for parts in PARTS {
            let par = read_metis_chunked(text.as_bytes(), parts);
            assert_same_outcome(&seq, &par, &format!("parts={parts} corrupted"));
        }
    }

    #[test]
    fn edgelist_chunked_matches_sequential((edges, ce) in arb_edgelist()) {
        let text = render_edgelist(&edges, ce);
        let seq = read_edge_list_seq(text.as_bytes()).expect("valid render");
        for parts in PARTS {
            let par = read_edge_list_chunked(text.as_bytes(), parts).expect("valid render");
            assert_eq!(seq.labels, par.labels, "parts={parts} label order");
            assert_bit_identical(&seq.graph, &par.graph, &format!("parts={parts}"));
        }
    }

    #[test]
    fn edgelist_errors_match_sequential(
        (edges, ce) in arb_edgelist(),
        line_pick in 0usize..100,
        kind in 0usize..2,
    ) {
        // kinds that are invalid for edge lists: lone token, bad target
        let bad = if kind == 0 { "77" } else { "3 notanid" };
        let mut text = render_edgelist(&edges, ce);
        let insert_at = line_pick % (text.lines().count() + 1);
        let mut lines: Vec<&str> = text.lines().collect();
        lines.insert(insert_at.min(lines.len()), bad);
        text = lines.join("\n") + "\n";

        let seq = read_edge_list_seq(text.as_bytes());
        prop_assert!(seq.is_err());
        for parts in PARTS {
            let par = read_edge_list_chunked(text.as_bytes(), parts);
            let (e1, e2) = (seq.as_ref().unwrap_err(), par.as_ref().unwrap_err());
            assert_eq!(e1.line(), e2.line(), "parts={parts}");
            assert_eq!(e1.to_string(), e2.to_string(), "parts={parts}");
        }
    }

    /// Inputs far below `MIN_PARALLEL_BYTES` still honor explicit chunk
    /// counts larger than the line count.
    #[test]
    fn tiny_inputs_with_many_chunks(n in 1usize..4) {
        let text = render_metis(n, &[], false, 0);
        let seq = read_metis_seq(text.as_bytes());
        for parts in [2usize, 16, 64] {
            let par = read_metis_chunked(text.as_bytes(), parts);
            assert_same_outcome(&seq, &par, &format!("tiny parts={parts}"));
        }
    }
}
