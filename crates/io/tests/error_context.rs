//! The uniform `IoError` contract: every reader's error carries the file
//! path (when entered through a path) and the offending line number (when
//! the parser knows it), and `Display` leads with `path:line:`.

use parcom_core::Budget;
use parcom_io::{read_edge_list, read_metis, read_partition, IoError, IoErrorKind};
use parcom_obs::Recorder;
use std::path::PathBuf;

fn write_temp(name: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("parcom_io_error_context");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, contents).unwrap();
    path
}

/// The error must name the path and the 1-based line, in `path:line:` form.
fn assert_context(err: &IoError, path: &std::path::Path, line: usize) {
    assert_eq!(err.path(), Some(path), "missing path context: {err}");
    assert_eq!(err.line(), Some(line), "wrong line context: {err}");
    let display = err.to_string();
    let expected_prefix = format!("{}:{line}: ", path.display());
    assert!(
        display.starts_with(&expected_prefix),
        "`{display}` does not start with `{expected_prefix}`"
    );
    assert!(matches!(err.kind(), IoErrorKind::Parse(_)));
}

#[test]
fn edgelist_errors_carry_path_and_line() {
    let path = write_temp("bad.edges", "# fine\n0 1\nnot numbers\n");
    let err = read_edge_list(&path).unwrap_err();
    assert_context(&err, &path, 3);
}

#[test]
fn metis_errors_carry_path_and_line() {
    let path = write_temp("bad.metis", "2 1\n2\nbogus\n");
    let err = read_metis(&path).unwrap_err();
    assert_context(&err, &path, 3);
}

#[test]
fn metis_header_errors_point_at_the_header() {
    let path = write_temp("bad_header.metis", "% comment\nonly-one-field\n");
    let err = read_metis(&path).unwrap_err();
    assert_context(&err, &path, 2);
}

#[test]
fn partition_errors_carry_path_and_line() {
    let path = write_temp("bad.ptn", "0\n1\nx\n");
    let err = read_partition(&path).unwrap_err();
    assert_context(&err, &path, 3);
}

#[test]
fn missing_file_carries_path_but_no_line() {
    let path = std::env::temp_dir().join("parcom_io_error_context/does_not_exist.graph");
    let err = read_metis(&path).unwrap_err();
    assert_eq!(err.path(), Some(path.as_path()));
    assert_eq!(err.line(), None);
    assert!(matches!(err.kind(), IoErrorKind::Io(_)));
    let display = err.to_string();
    assert!(
        display.starts_with(&format!("{}: ", path.display())),
        "`{display}` lacks path prefix"
    );
}

#[test]
fn whole_file_checks_carry_the_last_line() {
    // edge-count mismatch is only detectable after the whole file is
    // read; the error still anchors at the last line read so the message
    // keeps the `path:line:` shape
    let path = write_temp("mismatch.metis", "3 2\n2\n1\n\n");
    let err = read_metis(&path).unwrap_err();
    assert!(err.to_string().contains("header claims"));
    assert_context(&err, &path, 4);

    let path = write_temp("short.metis", "4 2\n2\n1\n");
    let err = read_metis(&path).unwrap_err();
    assert!(err.to_string().contains("expected 4 adjacency lines"));
    assert_context(&err, &path, 3);
}

#[test]
fn ingest_limit_rejections_carry_path_and_line() {
    // the header claims more nodes than the budget admits; the reader
    // must reject before parsing the (bogus) body, with full context
    let path = write_temp("huge.metis", "% big\n5000 10\nnot a body\n");
    let budget = Budget::unlimited().with_input_limits(1000, 100_000);
    let err = parcom_io::read_metis_budgeted(&path, &Recorder::disabled(), &budget).unwrap_err();
    assert!(err.to_string().contains("ingest limit"), "{err}");
    assert_context(&err, &path, 2);
}

#[test]
fn implausible_edge_claims_carry_path_and_line() {
    let path = write_temp("corrupt.metis", "2 9\n2\n1\n");
    let err = read_metis(&path).unwrap_err();
    assert!(err.to_string().contains("complete graph"), "{err}");
    assert_context(&err, &path, 1);
}

#[test]
fn reader_entry_points_have_line_but_no_path() {
    let err = parcom_io::metis::read_metis_from("2 1\n2\nbogus\n".as_bytes()).unwrap_err();
    assert_eq!(err.path(), None);
    assert_eq!(err.line(), Some(3));
    assert!(err.to_string().starts_with("line 3: "), "{err}");
}

#[test]
fn good_files_round_trip_through_paths() {
    let (g, _) = parcom_generators::ring_of_cliques(3, 4);
    let path = std::env::temp_dir().join("parcom_io_error_context/ok.metis");
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    parcom_io::write_metis(&g, &path).unwrap();
    let g2 = read_metis(&path).unwrap();
    assert_eq!(g.edge_count(), g2.edge_count());
}
