//! Property-based tests across the generator family: whatever the
//! parameters, generators must emit structurally consistent simple graphs
//! with the promised node counts, and planted models must return partitions
//! that exactly cover the node set.

use parcom::generators::{
    barabasi_albert, erdos_renyi, grid2d, lfr, planted_partition, ring_of_cliques, rmat,
    watts_strogatz, LfrParams, PlantedPartitionParams, RmatParams,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn erdos_renyi_always_consistent(n in 0usize..300, p in 0.0f64..0.2, seed in 0u64..50) {
        let g = erdos_renyi(n, p, seed);
        prop_assert_eq!(g.node_count(), n);
        prop_assert!(g.check_consistency());
        prop_assert!(g.edge_count() <= n.saturating_mul(n.saturating_sub(1)) / 2);
    }

    #[test]
    fn barabasi_albert_always_consistent(
        n in 10usize..300, attach in 1usize..5, seed in 0u64..50
    ) {
        let g = barabasi_albert(n, attach, seed);
        prop_assert_eq!(g.node_count(), n);
        prop_assert!(g.check_consistency());
        // minimum degree is the attachment count
        prop_assert!(g.nodes().all(|u| g.degree(u) >= attach));
    }

    #[test]
    fn watts_strogatz_preserves_edge_count(
        k in 1usize..4, beta in 0.0f64..1.0, seed in 0u64..50
    ) {
        let n = 50;
        let g = watts_strogatz(n, k, beta, seed);
        prop_assert_eq!(g.edge_count(), n * k);
        prop_assert!(g.check_consistency());
    }

    #[test]
    fn rmat_has_power_of_two_nodes(scale in 4u32..10, ef in 1usize..8, seed in 0u64..50) {
        let g = rmat(RmatParams::paper_with_edge_factor(scale, ef), seed);
        prop_assert_eq!(g.node_count(), 1usize << scale);
        prop_assert!(g.check_consistency());
        prop_assert!(g.edge_count() <= (1usize << scale) * ef);
    }

    #[test]
    fn lfr_partition_covers_nodes(n in 300usize..1200, mu in 0.05f64..0.8, seed in 0u64..30) {
        let (g, truth) = lfr(LfrParams::benchmark(n.max(120), mu), seed);
        prop_assert_eq!(g.node_count(), truth.len());
        prop_assert_eq!(truth.subset_sizes().iter().sum::<usize>(), g.node_count());
        prop_assert!(g.check_consistency());
    }

    #[test]
    fn planted_partition_blocks_balanced(
        k in 1usize..8, seed in 0u64..30
    ) {
        let n = 160;
        let (g, truth) = planted_partition(
            PlantedPartitionParams { n, k, p_in: 0.1, p_out: 0.01 },
            seed,
        );
        prop_assert!(g.check_consistency());
        prop_assert_eq!(truth.number_of_subsets(), k);
        let sizes = truth.subset_sizes();
        let (min, max) = (
            sizes.iter().filter(|&&s| s > 0).min().copied().unwrap(),
            sizes.iter().max().copied().unwrap(),
        );
        prop_assert!(max - min <= 1, "blocks must be near-equal: {:?}", sizes);
    }

    #[test]
    fn grids_and_cliques_consistent(w in 1usize..12, h in 1usize..12, s in 1usize..6) {
        let g = grid2d(w, h);
        prop_assert!(g.check_consistency());
        let (rc, truth) = ring_of_cliques(w.max(1), s);
        prop_assert!(rc.check_consistency());
        prop_assert_eq!(truth.len(), rc.node_count());
    }
}
