//! Property-based tests on the core data structures and algorithm
//! invariants, driven by randomly generated graphs and partitions.

use parcom::community::combine::{core_communities, core_communities_exact};
use parcom::community::compare::{jaccard_index, nmi, rand_index};
use parcom::community::quality::{coverage, modularity};
use parcom::community::{move_phase, CommunityDetector, Plm};
use parcom::graph::{coarsen, AtomicPartition, GraphBuilder, Partition};
use proptest::prelude::*;

/// Strategy: a random weighted graph with up to `max_n` nodes.
fn arb_graph(max_n: usize) -> impl Strategy<Value = parcom::graph::Graph> {
    (2..max_n).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, 1u32..100u32);
        proptest::collection::vec(edge, 0..(4 * n)).prop_map(move |edges| {
            let mut b = GraphBuilder::new(n);
            for (u, v, w) in edges {
                b.add_edge(u, v, w as f64 / 10.0);
            }
            b.build()
        })
    })
}

/// Strategy: a graph plus a random partition of its nodes.
fn arb_graph_and_partition(
    max_n: usize,
) -> impl Strategy<Value = (parcom::graph::Graph, Partition)> {
    arb_graph(max_n).prop_flat_map(|g| {
        let n = g.node_count();
        proptest::collection::vec(0..(n as u32 / 2 + 1), n)
            .prop_map(move |data| (g.clone(), Partition::from_vec(data)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn builder_output_is_always_consistent(g in arb_graph(60)) {
        prop_assert!(g.check_consistency());
    }

    #[test]
    fn volume_identity_holds(g in arb_graph(60)) {
        let vol: f64 = g.nodes().map(|u| g.volume(u)).sum();
        let expect = 2.0 * g.total_edge_weight();
        prop_assert!((vol - expect).abs() <= 1e-9 * expect.abs().max(1.0));
    }

    #[test]
    fn coarsening_preserves_total_weight_and_node_coverage(
        (g, p) in arb_graph_and_partition(50)
    ) {
        let c = coarsen(&g, &p);
        prop_assert!((c.coarse.total_edge_weight() - g.total_edge_weight()).abs() < 1e-9);
        prop_assert_eq!(c.fine_to_coarse.len(), g.node_count());
        let mut p2 = p.clone();
        prop_assert_eq!(c.coarse.node_count(), p2.compact());
    }

    #[test]
    fn coarse_modularity_equals_fine_modularity(
        (g, p) in arb_graph_and_partition(50)
    ) {
        // contracting by ζ and scoring singletons on G' must equal mod(ζ, G)
        let c = coarsen(&g, &p);
        let coarse_singletons = Partition::singleton(c.coarse.node_count());
        let q_coarse = modularity(&c.coarse, &coarse_singletons);
        let q_fine = modularity(&g, &p);
        prop_assert!((q_coarse - q_fine).abs() < 1e-9,
            "coarse {} vs fine {}", q_coarse, q_fine);
    }

    #[test]
    fn prolong_preserves_grouping((g, p) in arb_graph_and_partition(40)) {
        let c = coarsen(&g, &p);
        let prolonged = c.prolong(&Partition::singleton(c.coarse.node_count()));
        for u in 0..g.node_count() as u32 { // audit:allow(lossy-cast): bounded by the u32 node id space
            for v in 0..g.node_count() as u32 { // audit:allow(lossy-cast): bounded by the u32 node id space
                prop_assert_eq!(p.in_same_subset(u, v), prolonged.in_same_subset(u, v));
            }
        }
    }

    #[test]
    fn modularity_bounded((g, p) in arb_graph_and_partition(50)) {
        if g.total_edge_weight() > 0.0 {
            let q = modularity(&g, &p);
            prop_assert!((-0.5..=1.0).contains(&q), "modularity {} out of range", q);
            let cov = coverage(&g, &p);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&cov));
        }
    }

    #[test]
    fn move_phase_never_harms_quality_materially((g, p) in arb_graph_and_partition(40)) {
        // parallel moves on stale data may transiently lose, but from any
        // start the final state of a full move phase must not be worse
        if g.total_edge_weight() > 0.0 {
            let before = modularity(&g, &p);
            let mut zeta = p.clone();
            move_phase(&g, &mut zeta, 1.0, 32);
            let after = modularity(&g, &zeta);
            // single-threaded the phase is monotone; under real parallelism
            // stale reads permit small transient losses (§III-B)
            prop_assert!(after >= before - 0.05,
                "move phase degraded modularity {} -> {}", before, after);
        }
    }

    #[test]
    fn plm_beats_trivial_partitions(g in arb_graph(50)) {
        if g.total_edge_weight() > 0.0 {
            let zeta = Plm::new().detect(&g);
            let q = modularity(&g, &zeta);
            prop_assert!(q >= modularity(&g, &Partition::singleton(g.node_count())) - 1e-9);
            prop_assert!(q >= modularity(&g, &Partition::all_in_one(g.node_count())) - 1e-9);
        }
    }

    #[test]
    fn hash_combine_always_matches_exact(
        parts in proptest::collection::vec(
            proptest::collection::vec(0u32..8, 30), 1..5)
    ) {
        let solutions: Vec<Partition> =
            parts.into_iter().map(Partition::from_vec).collect();
        let mut fast = core_communities(&solutions);
        let mut exact = core_communities_exact(&solutions);
        fast.compact();
        exact.compact();
        prop_assert_eq!(fast.as_slice(), exact.as_slice());
    }

    #[test]
    fn similarity_measures_are_reflexive_and_bounded(
        data in proptest::collection::vec(0u32..6, 2..40),
        data2 in proptest::collection::vec(0u32..6, 2..40),
    ) {
        let n = data.len().min(data2.len());
        let a = Partition::from_vec(data[..n].to_vec());
        let b = Partition::from_vec(data2[..n].to_vec());
        prop_assert_eq!(jaccard_index(&a, &a), 1.0);
        for f in [jaccard_index(&a, &b), rand_index(&a, &b), nmi(&a, &b)] {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&f));
        }
        // symmetry
        prop_assert!((jaccard_index(&a, &b) - jaccard_index(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn atomic_partition_stays_valid_under_concurrent_relaxed_writes(
        n in 1usize..48,
        plans in proptest::collection::vec(
            proptest::collection::vec((0u32..48, 0u32..48), 0..64), 2..5),
    ) {
        // the PLP/PLM shared-assignment protocol: any number of threads
        // race relaxed writes of in-range labels against each other; the
        // result must still be a valid partition with every label one
        // some thread actually wrote (never torn, never out of range)
        let upper = n as u32;
        let labels = AtomicPartition::singleton(n);
        std::thread::scope(|s| {
            for plan in &plans {
                let labels = &labels;
                s.spawn(move || {
                    for &(v, c) in plan {
                        labels.set(v % upper, c % upper);
                    }
                });
            }
        });
        prop_assert!(labels.validate(upper).is_ok());
        let snapshot = labels.to_partition();
        prop_assert_eq!(snapshot.len(), n);
        prop_assert!(snapshot.as_slice().iter().all(|&c| c < upper));
    }

    #[test]
    fn partition_compact_is_idempotent(data in proptest::collection::vec(0u32..50, 1..80)) {
        let mut p = Partition::from_vec(data);
        let k1 = p.compact();
        let snapshot = p.as_slice().to_vec();
        let k2 = p.compact();
        prop_assert_eq!(k1, k2);
        prop_assert_eq!(p.as_slice(), snapshot.as_slice());
    }
}
