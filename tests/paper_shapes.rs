//! Shape assertions distilled from the paper's evaluation claims — the
//! qualitative relationships every healthy build must reproduce (small
//! instances; the full-size versions live in the bench targets).

use parcom::community::compare::jaccard_index;
use parcom::community::{quality::modularity, CommunityDetector, Epp, Plm, Plp};
use parcom::generators::{lfr, LfrParams};
use std::time::Instant;

fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed().as_secs_f64())
}

#[test]
fn plp_is_much_faster_than_plm() {
    // §V-B: "PLP can solve instances in only 10-20 percent of the time
    // required by PLM" — allow slack on small inputs
    let (g, _) = lfr(LfrParams::benchmark(20_000, 0.3), 41);
    // warm up allocators
    Plp::new().detect(&g);
    let (_, t_plp) = timed(|| Plp::new().detect(&g));
    let (_, t_plm) = timed(|| Plm::new().detect(&g));
    assert!(
        t_plp < 0.6 * t_plm,
        "PLP ({t_plp:.3}s) should be clearly faster than PLM ({t_plm:.3}s)"
    );
}

#[test]
fn plm_recovers_ground_truth_under_strong_noise() {
    // Fig. 8: PLM detects the ground truth even at high mixing
    let (g, truth) = lfr(LfrParams::benchmark(3_000, 0.6), 42);
    let zeta = Plm::new().detect(&g);
    let j = jaccard_index(&zeta, &truth);
    assert!(
        j > 0.5,
        "PLM lost the planted structure at mu=0.6: jaccard {j}"
    );
}

#[test]
fn plp_degrades_before_plm_as_noise_grows() {
    // Fig. 8 shape: PLP is less robust than PLM at high mu
    let (g, truth) = lfr(LfrParams::benchmark(3_000, 0.7), 43);
    let j_plm = jaccard_index(&Plm::new().detect(&g), &truth);
    let j_plp = jaccard_index(&Plp::new().detect(&g), &truth);
    assert!(
        j_plm >= j_plp - 0.05,
        "expected PLM ({j_plm}) at least as robust as PLP ({j_plp}) at mu=0.7"
    );
}

#[test]
fn refinement_improves_or_preserves_modularity() {
    // §V-C: "adding a refinement phase generally leads to an improvement"
    let mut wins = 0;
    let mut total = 0;
    for seed in [1u64, 2, 3] {
        let (g, _) = lfr(LfrParams::benchmark(2_000, 0.5), 44 + seed);
        let q_plm = modularity(&g, &Plm::new().detect(&g));
        let q_plmr = modularity(&g, &Plm::with_refinement().detect(&g));
        assert!(
            q_plmr >= q_plm - 0.01,
            "seed {seed}: PLMR ({q_plmr}) clearly below PLM ({q_plm})"
        );
        total += 1;
        if q_plmr >= q_plm {
            wins += 1;
        }
    }
    assert!(wins * 2 >= total, "refinement failed to help in most runs");
}

#[test]
fn epp_improves_on_single_plp_with_noise() {
    // Fig. 4: "EPP pays off in the form of improved modularity on most
    // instances" (vs a single PLP)
    let mut improvements = 0;
    for seed in [1u64, 2, 3] {
        let (g, _) = lfr(LfrParams::benchmark(2_000, 0.55), 50 + seed);
        let mut plp = Plp::new();
        plp.set_seed(seed);
        let q_plp = modularity(&g, &plp.detect(&g));
        let q_epp = modularity(&g, &Epp::plp_plm(4).detect(&g));
        if q_epp > q_plp {
            improvements += 1;
        }
    }
    assert!(
        improvements >= 2,
        "EPP should beat a single PLP on most noisy instances ({improvements}/3)"
    );
}

#[test]
fn quality_ordering_plp_epp_plm() {
    // Fig. 6 shape: modularity(PLP) <= modularity(EPP) ~ modularity(PLM)
    let (g, _) = lfr(LfrParams::benchmark(4_000, 0.5), 60);
    let q_plp = modularity(&g, &Plp::new().detect(&g));
    let q_epp = modularity(&g, &Epp::plp_plm(4).detect(&g));
    let q_plm = modularity(&g, &Plm::new().detect(&g));
    assert!(q_plp <= q_epp + 0.02, "PLP {q_plp} vs EPP {q_epp}");
    assert!(q_epp <= q_plm + 0.03, "EPP {q_epp} vs PLM {q_plm}");
}

#[test]
fn plp_threshold_cuts_iterations_without_quality_loss() {
    // §III-A: θ = n·1e-5 versus exact convergence
    let (g, _) = lfr(LfrParams::benchmark(5_000, 0.4), 61);
    let iterations_of = |report: &parcom::community::RunReport| {
        report
            .phase("label-propagation")
            .and_then(|p| p.counter("iterations"))
            .expect("PLP report carries the iteration count")
    };
    let mut exact = Plp {
        theta_fraction: 0.0,
        ..Plp::default()
    };
    let (zeta_exact, report_exact) = exact.detect_with_report(&g);
    let q_exact = modularity(&g, &zeta_exact);
    let iters_exact = iterations_of(&report_exact);
    let (zeta_thresh, report_thresh) = Plp::new().detect_with_report(&g);
    let q_thresh = modularity(&g, &zeta_thresh);
    let iters_thresh = iterations_of(&report_thresh);
    assert!(iters_thresh <= iters_exact);
    assert!(
        q_thresh > q_exact - 0.03,
        "threshold cost too much quality: {q_thresh} vs {q_exact}"
    );
}
