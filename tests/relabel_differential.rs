//! Differential tests for degree-ordered relabeling (DESIGN.md §15).
//!
//! Relabeling is a *view* change, not a graph change: the reordered graph
//! must be isomorphic to the original under the stored permutation, and
//! every per-node artifact (partitions, community sizes, quality scores)
//! must survive the round-trip back to original ids. PLP and PLM traverse
//! nodes in id order, so detection on the relabeled view is *not* expected
//! to be bit-identical to detection on the original order — what must hold
//! is that the relabeled pipeline is internally deterministic (in memory
//! vs through a `.pcg` file, and across thread counts for the
//! deterministic move strategies) and that mapped-back results are valid,
//! same-quality partitions of the original graph.

use parcom::community::{quality::modularity, CommunityDetector, MoveStrategy, Plm, Plp};
use parcom::generators::{barabasi_albert, lfr, LfrParams};
use parcom::graph::parallel::with_threads;
use parcom::graph::relabel::Relabeling;
use parcom::graph::{Graph, GraphBuilder, Partition};
use parcom::io::{load_graph_auto, write_pcg};
use parcom_guard::Budget;
use parcom_obs::Recorder;
use proptest::prelude::*;
use std::collections::HashMap;

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("parcom_relabel_diff_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Asserts that `h` is exactly `g` with ids mapped through `r`: same
/// neighbor sets with identical weights, same cached degree/self-loop
/// values, same totals.
fn assert_isomorphic_under(g: &Graph, h: &Graph, r: &Relabeling) {
    assert_eq!(g.node_count(), h.node_count());
    assert_eq!(g.edge_count(), h.edge_count());
    assert!((g.total_edge_weight() - h.total_edge_weight()).abs() < 1e-12);
    for old in g.nodes() {
        let new = r.to_new_id(old);
        assert_eq!(g.degree(old), h.degree(new), "degree of old node {old}");
        assert!(
            (g.weighted_degree(old) - h.weighted_degree(new)).abs() < 1e-12,
            "weighted degree of old node {old}"
        );
        assert!(
            (g.self_loop_weight(old) - h.self_loop_weight(new)).abs() < 1e-12,
            "self-loop weight of old node {old}"
        );
        let mut ours: Vec<(u32, u64)> = g
            .edges_of(old)
            .map(|(v, w)| (r.to_new_id(v), w.to_bits()))
            .collect();
        let mut theirs: Vec<(u32, u64)> = h.edges_of(new).map(|(v, w)| (v, w.to_bits())).collect();
        ours.sort_unstable();
        theirs.sort_unstable();
        assert_eq!(ours, theirs, "adjacency of old node {old} (new id {new})");
    }
}

/// Multiset of community sizes, ignoring community ids.
fn size_multiset(p: &Partition) -> Vec<usize> {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for &c in p.as_slice() {
        *counts.entry(c).or_insert(0) += 1;
    }
    let mut sizes: Vec<usize> = counts.into_values().collect();
    sizes.sort_unstable();
    sizes
}

/// Strategy: a random connected-ish weighted graph with up to `max_n` nodes.
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..max_n).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, 1u32..100u32);
        proptest::collection::vec(edge, n..(4 * n)).prop_map(move |edges| {
            let mut b = GraphBuilder::new(n);
            // a backbone path so degree_ordered sees varied degrees even
            // when the random edges collapse into duplicates
            for u in 1..n as u32 {
                b.add_unweighted_edge(u - 1, u);
            }
            for (u, v, w) in edges {
                b.add_edge(u, v, w as f64 / 10.0);
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Relabeling any graph yields an isomorphic graph, and applying the
    /// inverse permutation to the relabeled view restores the original
    /// bit-for-bit.
    #[test]
    fn relabel_roundtrip_is_bit_identical(g in arb_graph(50)) {
        let r = Relabeling::degree_ordered(&g);
        let h = r.apply(&g);
        assert_isomorphic_under(&g, &h, &r);

        // the inverse relabeling, seen from h's id space: new_of_old is
        // r.old_of_new
        let inv = Relabeling::from_new_of_old(r.old_of_new().to_vec()).unwrap();
        let back = inv.apply(&h);
        for u in g.nodes() {
            prop_assert_eq!(g.neighbors(u), back.neighbors(u));
            let (_, gw) = g.neighbors_and_weights(u);
            let (_, bw) = back.neighbors_and_weights(u);
            let gw: Vec<u64> = gw.iter().map(|w| w.to_bits()).collect();
            let bw: Vec<u64> = bw.iter().map(|w| w.to_bits()).collect();
            prop_assert_eq!(gw, bw);
        }
    }

    /// Partition mapping round-trips exactly, and quality is invariant
    /// under the id-space change (same clustering, both id spaces).
    #[test]
    fn partition_mapping_roundtrips_and_preserves_quality(g in arb_graph(50)) {
        let r = Relabeling::degree_ordered(&g);
        let h = r.apply(&g);
        let zeta_new = Plm::new().detect(&h);
        let zeta_old = r.to_original(&zeta_new);
        let remapped = r.to_new(&zeta_old);
        prop_assert_eq!(zeta_new.as_slice(), remapped.as_slice());
        prop_assert_eq!(size_multiset(&zeta_new), size_multiset(&zeta_old));
        let q_new = modularity(&h, &zeta_new);
        let q_old = modularity(&g, &zeta_old);
        prop_assert!(
            (q_new - q_old).abs() < 1e-9,
            "modularity not invariant under relabeling: {} vs {}", q_new, q_old
        );
    }
}

/// The full pipeline is deterministic: detect on the in-memory relabeled
/// view vs detect on the same view written to and reread from a `.pcg`
/// file must be bit-identical, for both PLP and PLM, and the reread
/// permutation must map both back to the same original-id partition.
#[test]
fn pcg_pipeline_matches_in_memory_relabeling_bit_for_bit() {
    let (g, _) = lfr(LfrParams::benchmark(600, 0.35), 21);
    let r = Relabeling::degree_ordered(&g);
    let h = r.apply(&g);
    let path = temp_path("pipeline.pcg");
    write_pcg(&h, Some(&r), &path).unwrap();
    let loaded = load_graph_auto(&path, &Recorder::disabled(), &Budget::unlimited()).unwrap();
    let lr = loaded
        .relabeling
        .expect("permutation must survive the file");
    assert_eq!(lr.new_of_old(), r.new_of_old());

    with_threads(1, || {
        let mem_plm = Plm::new().detect(&h);
        let file_plm = Plm::new().detect(&loaded.graph);
        assert_eq!(
            mem_plm.as_slice(),
            file_plm.as_slice(),
            "PLM diverges between the in-memory and reread relabeled views"
        );
        assert_eq!(
            r.to_original(&mem_plm).as_slice(),
            lr.to_original(&file_plm).as_slice()
        );

        let seeded_plp = |g: &Graph| {
            let mut plp = Plp::new();
            plp.set_seed(5);
            plp.detect(g)
        };
        let mem_plp = seeded_plp(&h);
        let file_plp = seeded_plp(&loaded.graph);
        assert_eq!(
            mem_plp.as_slice(),
            file_plp.as_slice(),
            "PLP diverges between the in-memory and reread relabeled views"
        );
    });
}

/// The deterministic move strategies stay deterministic on the relabeled
/// view: 1 thread and 4 threads produce bit-identical partitions, which
/// map back to bit-identical original-id partitions.
#[test]
fn deterministic_strategies_survive_relabeling_across_thread_counts() {
    let g = barabasi_albert(800, 4, 17);
    let r = Relabeling::degree_ordered(&g);
    let h = r.apply(&g);
    for strategy in [MoveStrategy::Coloring, MoveStrategy::Synchronized] {
        let z1 = with_threads(1, || Plm::with_strategy(strategy).detect(&h));
        let z4 = with_threads(4, || Plm::with_strategy(strategy).detect(&h));
        assert_eq!(
            z1.as_slice(),
            z4.as_slice(),
            "{strategy} differs across thread counts on the relabeled view"
        );
        assert_eq!(r.to_original(&z1).as_slice(), r.to_original(&z4).as_slice());
    }
}

/// Detection on the relabeled view, mapped back, is a valid same-scale
/// partition of the original graph: every node labeled, quality within
/// the band the paper reports for order perturbations.
#[test]
fn relabeled_detection_quality_matches_original_order() {
    let (g, _) = lfr(LfrParams::benchmark(1000, 0.3), 33);
    let r = Relabeling::degree_ordered(&g);
    let h = r.apply(&g);
    let q_orig = modularity(&g, &Plm::new().detect(&g));
    let q_rel = modularity(&g, &r.to_original(&Plm::new().detect(&h)));
    assert!(
        (q_orig - q_rel).abs() < 0.05,
        "relabeling moved PLM quality too far: {q_orig} vs {q_rel}"
    );
}
