//! Failure-injection tests: the readers must return errors — never panic,
//! hang or produce inconsistent graphs — on arbitrary and adversarial
//! input.

use parcom::io::{edgelist, metis, partition_io};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn metis_reader_never_panics(input in ".{0,400}") {
        let _ = metis::read_metis_from(input.as_bytes());
    }

    #[test]
    fn metis_reader_never_panics_on_numeric_soup(
        nums in proptest::collection::vec(0u32..2000, 0..120),
        n in 0u32..50,
        m in 0u32..100,
    ) {
        let mut input = format!("{n} {m}\n");
        for chunk in nums.chunks(7) {
            let line: Vec<String> = chunk.iter().map(u32::to_string).collect();
            input.push_str(&line.join(" "));
            input.push('\n');
        }
        if let Ok(g) = metis::read_metis_from(input.as_bytes()) {
            prop_assert!(g.check_consistency());
        }
    }

    #[test]
    fn edge_list_reader_never_panics(input in ".{0,400}") {
        if let Ok(el) = edgelist::read_edge_list_from(input.as_bytes()) {
            prop_assert!(el.graph.check_consistency());
        }
    }

    #[test]
    fn edge_list_accepts_all_valid_pairs(
        pairs in proptest::collection::vec((0u64..1000, 0u64..1000), 1..60)
    ) {
        let input: String = pairs
            .iter()
            .map(|(u, v)| format!("{u} {v}\n"))
            .collect();
        let el = edgelist::read_edge_list_from(input.as_bytes()).unwrap();
        prop_assert!(el.graph.check_consistency());
        prop_assert!(el.graph.node_count() <= 2 * pairs.len());
    }

    #[test]
    fn partition_reader_never_panics(input in ".{0,400}") {
        let _ = partition_io::read_partition_from(input.as_bytes());
    }

    #[test]
    fn partition_roundtrip_arbitrary_ids(
        ids in proptest::collection::vec(0u32..u32::MAX / 2, 0..200)
    ) {
        let p = parcom::graph::Partition::from_vec(ids);
        let mut buf = Vec::new();
        partition_io::write_partition_to(&p, &mut buf).unwrap();
        let q = partition_io::read_partition_from(buf.as_slice()).unwrap();
        prop_assert_eq!(p.as_slice(), q.as_slice());
    }
}

#[test]
fn metis_truncated_inputs_error_cleanly() {
    for input in [
        "3",             // header only, no counts
        "3 2\n1",        // fewer lines than nodes... (line is node 1's adjacency)
        "2 1 1\n2\n1\n", // weighted flag but missing weights
        "1 0\n2\n",      // neighbor beyond n
        "abc def\n",     // garbage header
    ] {
        let r = metis::read_metis_from(input.as_bytes());
        assert!(r.is_err(), "input {input:?} should fail");
    }
}

#[test]
fn io_error_messages_carry_line_numbers() {
    let err = metis::read_metis_from("2 1\nxyz\n1\n".as_bytes()).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("line 2"), "unhelpful error: {msg}");
}
