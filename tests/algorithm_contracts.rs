//! Contract tests every community detection algorithm must satisfy,
//! exercised across the full registry.

use parcom::community::{quality::modularity, CommunityDetector};
use parcom::generators::{lfr, ring_of_cliques, LfrParams};
use parcom::graph::{Graph, GraphBuilder, Partition};

fn registry() -> Vec<Box<dyn CommunityDetector + Send>> {
    use parcom::community::{Cggc, Cnm, Epp, Louvain, Pam, Plm, Plp, Rg};
    vec![
        Box::new(Plp::new()),
        Box::new(Plm::new()),
        Box::new(Plm::with_refinement()),
        Box::new(Epp::plp_plm(2)),
        Box::new(Epp::plp_plmr(2)),
        Box::new(Louvain::new()),
        Box::new(Pam::new()),
        Box::new(Pam::cel()),
        Box::new(Cnm::new()),
        Box::new(Rg::new()),
        Box::new(Cggc::new(2)),
        Box::new(Cggc::iterated(2)),
    ]
}

fn check_valid_partition(zeta: &Partition, g: &Graph, name: &str) {
    assert_eq!(zeta.len(), g.node_count(), "{name}: wrong partition length");
    // ids within bounds
    // audit:allow(lossy-cast): bounded by the u32 node id space
    for v in 0..zeta.len() as u32 {
        assert!(
            zeta.subset_of(v) < zeta.upper_bound(),
            "{name}: id out of bounds"
        );
    }
}

#[test]
fn every_algorithm_returns_a_valid_partition() {
    let (g, _) = lfr(LfrParams::benchmark(400, 0.3), 11);
    for mut algo in registry() {
        let name = algo.name();
        let zeta = algo.detect(&g);
        check_valid_partition(&zeta, &g, &name);
    }
}

#[test]
fn every_algorithm_handles_the_empty_graph() {
    let g = GraphBuilder::new(0).build();
    for mut algo in registry() {
        let zeta = algo.detect(&g);
        assert_eq!(zeta.len(), 0, "{}: nonempty result", algo.name());
    }
}

#[test]
fn every_algorithm_handles_an_edgeless_graph() {
    let g = GraphBuilder::new(7).build();
    for mut algo in registry() {
        let name = algo.name();
        let zeta = algo.detect(&g);
        check_valid_partition(&zeta, &g, &name);
        assert_eq!(zeta.number_of_subsets(), 7, "{name}: merged isolated nodes");
    }
}

#[test]
fn every_algorithm_handles_a_single_edge() {
    let g = GraphBuilder::from_edges(2, &[(0, 1)]);
    for mut algo in registry() {
        let name = algo.name();
        let zeta = algo.detect(&g);
        check_valid_partition(&zeta, &g, &name);
        // merging the only edge is the unique positive-modularity move... for
        // a single edge, coverage 1 vs expected 1 gives mod 0 either way, so
        // both answers are admissible; only validity is required here.
    }
}

#[test]
fn every_algorithm_handles_self_loops() {
    let mut b = GraphBuilder::new(4);
    b.add_edge(0, 0, 2.0);
    b.add_edge(0, 1, 1.0);
    b.add_edge(2, 3, 1.0);
    b.add_edge(1, 1, 0.5);
    let g = b.build();
    for mut algo in registry() {
        let name = algo.name();
        let zeta = algo.detect(&g);
        check_valid_partition(&zeta, &g, &name);
    }
}

#[test]
fn every_algorithm_finds_obvious_structure() {
    let (g, truth) = ring_of_cliques(6, 8);
    let q_truth = modularity(&g, &truth);
    for mut algo in registry() {
        let name = algo.name();
        let zeta = algo.detect(&g);
        let q = modularity(&g, &zeta);
        assert!(
            q > 0.5 * q_truth,
            "{name}: modularity {q} too far below planted {q_truth}"
        );
    }
}

#[test]
fn every_algorithm_is_stable_under_weight_scaling() {
    // multiplying all weights by a constant must not change modularity of
    // the returned solutions materially (modularity is scale-invariant)
    let (g, _) = ring_of_cliques(5, 6);
    let mut scaled = GraphBuilder::new(g.node_count());
    g.for_edges(|u, v, w| scaled.add_edge(u, v, w * 10.0));
    let scaled = scaled.build();
    for mut algo in registry() {
        let name = algo.name();
        let q1 = modularity(&g, &algo.detect(&g));
        let q2 = modularity(&scaled, &algo.detect(&scaled));
        assert!(
            (q1 - q2).abs() < 0.15,
            "{name}: weight scaling changed quality {q1} -> {q2}"
        );
    }
}

#[test]
fn disconnected_graphs_never_merge_components_with_positive_gamma() {
    // merging nodes from different components can never raise modularity
    let mut b = GraphBuilder::new(8);
    for (u, v) in [(0, 1), (1, 2), (2, 0), (4, 5), (5, 6), (6, 4)] {
        b.add_unweighted_edge(u, v);
    }
    let g = b.build();
    for mut algo in registry() {
        let name = algo.name();
        let zeta = algo.detect(&g);
        assert!(
            !zeta.in_same_subset(0, 4),
            "{name}: merged disconnected triangles"
        );
    }
}
