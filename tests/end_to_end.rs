//! End-to-end pipelines spanning all crates: generate → persist → reload →
//! detect → score → export.

use parcom::community::compare::jaccard_index;
use parcom::community::{quality::modularity, CommunityDetector, CommunityGraph, Epp, Plm, Plp};
use parcom::generators::{lfr, planted_partition, LfrParams, PlantedPartitionParams};
use parcom::io;

#[test]
fn generate_persist_detect_pipeline() {
    let (g, truth) = planted_partition(
        PlantedPartitionParams {
            n: 1000,
            k: 10,
            p_in: 0.08,
            p_out: 0.002,
        },
        1,
    );

    // METIS round trip
    let mut buf = Vec::new();
    io::metis::write_metis_to(&g, &mut buf).unwrap();
    let reloaded = io::metis::read_metis_from(buf.as_slice()).unwrap();
    assert_eq!(reloaded.edge_count(), g.edge_count());

    // detection on the reloaded graph recovers the planted structure
    let zeta = Plm::new().detect(&reloaded);
    assert!(
        jaccard_index(&zeta, &truth) > 0.8,
        "PLM failed to recover a strong planted partition: {}",
        jaccard_index(&zeta, &truth)
    );
    assert!(modularity(&reloaded, &zeta) > 0.5);
}

#[test]
fn partition_roundtrip_preserves_solution() {
    let (g, _) = lfr(LfrParams::benchmark(800, 0.3), 2);
    let zeta = Plp::new().detect(&g);
    let mut buf = Vec::new();
    io::partition_io::write_partition_to(&zeta, &mut buf).unwrap();
    let reloaded = io::partition_io::read_partition_from(buf.as_slice()).unwrap();
    assert_eq!(zeta.as_slice(), reloaded.as_slice());
    assert_eq!(modularity(&g, &zeta), modularity(&g, &reloaded));
}

#[test]
fn edge_list_roundtrip_preserves_quality() {
    let (g, _) = lfr(LfrParams::benchmark(600, 0.2), 3);
    let mut buf = Vec::new();
    io::edgelist::write_edge_list_to(&g, &mut buf).unwrap();
    let el = io::edgelist::read_edge_list_from(buf.as_slice()).unwrap();
    // labels were already compact, so grouping carries over directly
    let zeta = Plm::new().detect(&g);
    let zeta2 = Plm::new().detect(&el.graph);
    assert!((modularity(&g, &zeta) - modularity(&el.graph, &zeta2)).abs() < 0.05);
}

#[test]
fn community_graph_export_pipeline() {
    let (g, _) = lfr(LfrParams::benchmark(500, 0.2), 4);
    let zeta = Epp::plp_plm(2).detect(&g);
    let cg = CommunityGraph::build(&g, &zeta);
    assert_eq!(cg.community_count(), zeta.number_of_subsets());
    assert_eq!(cg.sizes.iter().sum::<usize>(), g.node_count());

    let mut buf = Vec::new();
    io::dot::write_community_graph_dot_to(&cg, "test", &mut buf).unwrap();
    let dot = String::from_utf8(buf).unwrap();
    assert!(dot.contains("graph \"test\""));
    assert!(dot.matches('n').count() >= cg.community_count());
}

#[test]
fn all_our_algorithms_beat_plp_or_match_on_quality_ladder() {
    // the paper's quality ordering on a structured instance:
    // PLP <= EPP ~ PLM <= PLMR (allowing small noise)
    let (g, _) = lfr(LfrParams::benchmark(2000, 0.4), 5);
    let q_plp = modularity(&g, &Plp::new().detect(&g));
    let q_plm = modularity(&g, &Plm::new().detect(&g));
    let q_plmr = modularity(&g, &Plm::with_refinement().detect(&g));
    assert!(q_plm >= q_plp - 0.02, "PLM {q_plm} vs PLP {q_plp}");
    assert!(q_plmr >= q_plm - 0.01, "PLMR {q_plmr} vs PLM {q_plm}");
}

#[test]
fn detection_works_across_generator_families() {
    use parcom::generators::{barabasi_albert, grid2d, ring_of_cliques, watts_strogatz};
    let graphs = vec![
        ("ba", barabasi_albert(500, 2, 6)),
        ("ws", watts_strogatz(500, 3, 0.1, 6)),
        ("grid", grid2d(20, 25)),
        ("cliques", ring_of_cliques(10, 5).0),
    ];
    for (name, g) in graphs {
        let zeta = Plm::new().detect(&g);
        let q = modularity(&g, &zeta);
        assert!(q > 0.0, "PLM found no structure on {name} (modularity {q})");
        assert_eq!(zeta.len(), g.node_count());
    }
}
