//! Determinism guarantees: seed-driven components must reproduce exactly;
//! thread-count changes must not affect *validity* of results.

use parcom::community::{
    quality::modularity, CommunityDetector, Epp, Louvain, MoveStrategy, Plm, Plp, Rg,
};
use parcom::generators::{
    barabasi_albert, erdos_renyi, hyperbolic, lfr, planted_partition, rmat, watts_strogatz,
    HyperbolicParams, LfrParams, PlantedPartitionParams, RmatParams,
};
use parcom::graph::parallel::with_threads;

#[test]
fn all_generators_are_seed_deterministic() {
    macro_rules! check {
        ($name:literal, $make:expr) => {{
            let a = $make;
            let b = $make;
            assert_eq!(a.node_count(), b.node_count(), "{} node count", $name);
            for u in a.nodes() {
                assert_eq!(a.neighbors(u), b.neighbors(u), "{} adjacency", $name);
            }
        }};
    }
    check!("er", erdos_renyi(200, 0.05, 3));
    check!("ba", barabasi_albert(200, 2, 3));
    check!("ws", watts_strogatz(200, 2, 0.2, 3));
    check!("rmat", rmat(RmatParams::paper_with_edge_factor(8, 4), 3));
    check!("lfr", lfr(LfrParams::benchmark(300, 0.3), 3).0);
    check!(
        "planted",
        planted_partition(
            PlantedPartitionParams {
                n: 200,
                k: 4,
                p_in: 0.2,
                p_out: 0.01
            },
            3
        )
        .0
    );
    check!(
        "hyperbolic",
        hyperbolic(HyperbolicParams::scale_free(200), 3)
    );
}

#[test]
fn sequential_algorithms_reproduce_exactly() {
    let (g, _) = lfr(LfrParams::benchmark(500, 0.4), 7);
    let seeded = |mut algo: Box<dyn CommunityDetector>| {
        algo.set_seed(11);
        algo.detect(&g)
    };
    let a = seeded(Box::new(Louvain::new()));
    let b = seeded(Box::new(Louvain::new()));
    assert_eq!(a.as_slice(), b.as_slice());
    let a = seeded(Box::new(Rg::new()));
    let b = seeded(Box::new(Rg::new()));
    assert_eq!(a.as_slice(), b.as_slice());
}

#[test]
fn parallel_algorithms_are_deterministic_single_threaded() {
    let (g, _) = lfr(LfrParams::benchmark(500, 0.4), 8);
    with_threads(1, || {
        let seeded_plp = || {
            let mut plp = Plp::new();
            plp.set_seed(5);
            plp
        };
        let a = seeded_plp().detect(&g);
        let b = seeded_plp().detect(&g);
        assert_eq!(
            a.as_slice(),
            b.as_slice(),
            "PLP not deterministic on 1 thread"
        );
        let a = Plm::new().detect(&g);
        let b = Plm::new().detect(&g);
        assert_eq!(
            a.as_slice(),
            b.as_slice(),
            "PLM not deterministic on 1 thread"
        );
    });
}

#[test]
fn coloring_and_sync_partitions_are_bit_identical_across_thread_counts() {
    // The DESIGN.md §14 determinism contract: the full PLM hierarchy —
    // coloring, move phases, coarsening, prolongation — must produce the
    // exact same labels at 1, 2 and 4 threads and across repeated runs.
    let (g, _) = lfr(LfrParams::benchmark(1200, 0.35), 13);
    for strategy in [MoveStrategy::Coloring, MoveStrategy::Synchronized] {
        let reference = with_threads(1, || Plm::with_strategy(strategy).detect(&g));
        for threads in [1usize, 2, 4] {
            for rep in 0..2 {
                let zeta = with_threads(threads, || Plm::with_strategy(strategy).detect(&g));
                assert_eq!(
                    zeta.as_slice(),
                    reference.as_slice(),
                    "{strategy} differs at {threads} threads (rep {rep})"
                );
            }
        }
        // PLMR runs a second (refinement) move phase per level — the
        // contract must survive that too.
        let plmr = |threads| {
            with_threads(threads, || {
                Plm {
                    refine: true,
                    move_strategy: strategy,
                    ..Plm::default()
                }
                .detect(&g)
            })
        };
        let r1 = plmr(1);
        let r4 = plmr(4);
        assert_eq!(
            r1.as_slice(),
            r4.as_slice(),
            "PLMR[{strategy}] differs across thread counts"
        );
    }
}

#[test]
fn thread_count_does_not_break_quality() {
    let (g, _) = lfr(LfrParams::benchmark(800, 0.3), 9);
    let q1 = with_threads(1, || modularity(&g, &Plm::new().detect(&g)));
    let q4 = with_threads(4, || modularity(&g, &Plm::new().detect(&g)));
    // the paper: "only small deviations in quality between single-threaded
    // and multi-threaded runs"
    assert!(
        (q1 - q4).abs() < 0.05,
        "PLM quality diverges across thread counts: {q1} vs {q4}"
    );
    let q1 = with_threads(1, || modularity(&g, &Epp::plp_plm(2).detect(&g)));
    let q4 = with_threads(4, || modularity(&g, &Epp::plp_plm(2).detect(&g)));
    assert!(
        (q1 - q4).abs() < 0.08,
        "EPP quality diverges across thread counts: {q1} vs {q4}"
    );
}
