//! Integration of the analytics layer (k-cores, subgraphs, assortativity,
//! per-community statistics) with the generators and detectors.

use parcom::community::community_stats::{community_stats, partition_summary};
use parcom::community::{quality::modularity, CommunityDetector, Plm};
use parcom::generators::{barabasi_albert, lfr, ring_of_cliques, watts_strogatz, LfrParams};
use parcom::graph::assortativity::degree_assortativity;
use parcom::graph::cores::CoreDecomposition;
use parcom::graph::subgraph::{induced_subgraph, largest_component_subgraph};

#[test]
fn ba_graph_has_deep_cores_around_hubs() {
    let g = barabasi_albert(2000, 3, 1);
    let d = CoreDecomposition::run(&g);
    assert!(d.degeneracy >= 3, "BA(m=3) degeneracy is at least 3");
    // every node survives to the attachment-count core
    assert!(d.core.iter().all(|&c| c >= 3));
}

#[test]
fn lattice_cores_are_shallow() {
    let g = watts_strogatz(500, 2, 0.0, 2);
    let d = CoreDecomposition::run(&g);
    // 4-regular ring lattice: every node in exactly the 4-core? No: peeling
    // the ring from anywhere cascades; k-core = min degree bound
    assert!(d.degeneracy <= 4);
}

#[test]
fn detected_communities_have_low_conductance() {
    let (g, _) = lfr(LfrParams::benchmark(2000, 0.2), 3);
    let zeta = Plm::new().detect(&g);
    let summary = partition_summary(&g, &zeta);
    assert!(summary.count > 1);
    assert!(
        summary.mean_conductance < 0.4,
        "strong LFR communities should have low conductance, got {}",
        summary.mean_conductance
    );
}

#[test]
fn conductance_tracks_mixing() {
    let (easy_g, easy_t) = lfr(LfrParams::benchmark(2000, 0.1), 4);
    let (hard_g, hard_t) = lfr(LfrParams::benchmark(2000, 0.5), 4);
    let easy = partition_summary(&easy_g, &easy_t).mean_conductance;
    let hard = partition_summary(&hard_g, &hard_t).mean_conductance;
    assert!(
        easy < hard,
        "conductance must grow with mixing: {easy} vs {hard}"
    );
}

#[test]
fn community_stats_conserve_graph_totals() {
    let (g, _) = lfr(LfrParams::benchmark(1000, 0.3), 5);
    let zeta = Plm::new().detect(&g);
    let stats = community_stats(&g, &zeta);
    let total_size: usize = stats.iter().map(|s| s.size).sum();
    assert_eq!(total_size, g.node_count());
    let total_volume: f64 = stats.iter().map(|s| s.volume).sum();
    assert!((total_volume - 2.0 * g.total_edge_weight()).abs() < 1e-6);
    // each cut edge counted once per side: Σ cut = 2 · inter-community weight
    let intra: f64 = stats.iter().map(|s| s.intra_weight).sum();
    let cut: f64 = stats.iter().map(|s| s.cut_weight).sum();
    assert!((intra + cut / 2.0 - g.total_edge_weight()).abs() < 1e-6);
}

#[test]
fn detection_on_largest_component_subgraph() {
    // R-MAT-like fragmentation: detect on the giant component only
    let g = parcom::generators::rmat(
        parcom::generators::RmatParams::paper_with_edge_factor(10, 8),
        6,
    );
    let sub = largest_component_subgraph(&g);
    assert!(sub.graph.node_count() > 0);
    assert!(sub.graph.node_count() <= g.node_count());
    let zeta = Plm::new().detect(&sub.graph);
    assert_eq!(zeta.len(), sub.graph.node_count());
    // map back to original ids without panicking
    // audit:allow(lossy-cast): bounded by the u32 node id space
    for v in 0..sub.graph.node_count() as u32 {
        let orig = sub.to_original[v as usize];
        assert_eq!(sub.from_original[orig as usize], Some(v));
    }
}

#[test]
fn induced_community_subgraph_is_denser_than_graph() {
    let (g, truth) = ring_of_cliques(6, 10);
    let members: Vec<u32> = (0..10).collect();
    let sub = induced_subgraph(&g, &members);
    // a clique: internal density 1
    let n = sub.graph.node_count();
    assert_eq!(sub.graph.edge_count(), n * (n - 1) / 2);
    let _ = truth;
}

#[test]
fn assortativity_separates_categories() {
    let ba = degree_assortativity(&barabasi_albert(3000, 2, 7)).unwrap();
    let (lfr_g, _) = lfr(LfrParams::benchmark(3000, 0.3), 7);
    let lf = degree_assortativity(&lfr_g).unwrap();
    // BA is disassortative; configuration-model LFR is near neutral
    assert!(ba < lf + 0.05, "BA {ba} vs LFR {lf}");
    assert!(ba < 0.05);
    assert!(lf.abs() < 0.3);
}

#[test]
fn modularity_and_conductance_agree_on_better_partitions() {
    let (g, truth) = ring_of_cliques(8, 8);
    let good = partition_summary(&g, &truth);
    let bad = partition_summary(
        &g,
        &parcom::graph::Partition::from_vec((0..g.node_count() as u32).map(|v| v % 8).collect()), // audit:allow(lossy-cast): bounded by the u32 node id space
    );
    assert!(good.mean_conductance < bad.mean_conductance);
    assert!(modularity(&g, &truth) > 0.0);
}
