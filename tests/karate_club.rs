//! Real-data validation on the Zachary karate club: every algorithm should
//! find community structure consistent with the historical two-faction
//! split.

use parcom::community::compare::{jaccard_index, rand_index};
use parcom::community::{quality::modularity, CommunityDetector};
use parcom::generators::karate_club;

fn algorithms() -> Vec<Box<dyn CommunityDetector + Send>> {
    use parcom::community::{Cggc, Cnm, Epp, Louvain, Pam, Plm, Plp, Rg};
    vec![
        Box::new(Plp::new()),
        Box::new(Plm::new()),
        Box::new(Plm::with_refinement()),
        Box::new(Epp::plp_plm(4)),
        Box::new(Louvain::new()),
        Box::new(Cnm::new()),
        Box::new(Rg::new()),
        Box::new(Cggc::new(4)),
        Box::new(Pam::new()),
    ]
}

#[test]
fn all_algorithms_find_structure_on_karate() {
    let (g, _) = karate_club();
    for mut algo in algorithms() {
        let name = algo.name();
        let zeta = algo.detect(&g);
        let q = modularity(&g, &zeta);
        assert!(q > 0.2, "{name}: modularity {q} too low on the karate club");
        let k = zeta.number_of_subsets();
        assert!(
            (2..=12).contains(&k),
            "{name}: implausible community count {k}"
        );
    }
}

#[test]
fn louvain_family_reaches_known_optimum_range() {
    // the known modularity optimum for the karate club is ~0.4198
    let (g, _) = karate_club();
    for mut algo in [
        Box::new(parcom::community::Plm::new()) as Box<dyn CommunityDetector + Send>,
        Box::new(parcom::community::Plm::with_refinement()),
        Box::new(parcom::community::Louvain::new()),
    ] {
        let q = modularity(&g, &algo.detect(&g));
        assert!(
            q > 0.35,
            "{}: karate modularity {q} below the Louvain-typical range",
            algo.name()
        );
        assert!(
            q <= 0.4198 + 1e-9,
            "{}: above the known optimum?!",
            algo.name()
        );
    }
}

#[test]
fn detected_communities_align_with_factions() {
    let (g, factions) = karate_club();
    let zeta = parcom::community::Plm::new().detect(&g);
    // modularity optima split the factions further, so require agreement
    // well above chance rather than identity
    let rand = rand_index(&zeta, &factions);
    assert!(
        rand > 0.6,
        "PLM communities should align with the factions (rand {rand})"
    );
    let j = jaccard_index(&zeta, &factions);
    assert!(j > 0.25, "jaccard vs factions too low: {j}");
}
