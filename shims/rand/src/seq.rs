//! Sequence-related random operations.

use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` when empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = ((rng.next_u64() as u128 * (i as u128 + 1)) >> 64) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = ((rng.next_u64() as u128 * self.len() as u128) >> 64) as usize;
            self.get(i)
        }
    }
}

/// Uniform index sampling without replacement.
pub mod index {
    use crate::Rng;

    /// The result of [`sample`]: `amount` distinct indices in `0..length`.
    #[derive(Clone, Debug)]
    pub struct IndexVec(Vec<usize>);

    impl IndexVec {
        /// The sampled indices as a vector.
        pub fn into_vec(self) -> Vec<usize> {
            self.0
        }

        /// Number of sampled indices.
        pub fn len(&self) -> usize {
            self.0.len()
        }

        /// True when no indices were sampled.
        pub fn is_empty(&self) -> bool {
            self.0.is_empty()
        }

        /// Iterates over the sampled indices.
        pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
            self.0.iter().copied()
        }
    }

    impl IntoIterator for IndexVec {
        type Item = usize;
        type IntoIter = std::vec::IntoIter<usize>;

        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Samples `amount` distinct indices uniformly from `0..length` via a
    /// partial Fisher–Yates shuffle.
    ///
    /// Panics when `amount > length`, matching `rand`.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
        assert!(
            amount <= length,
            "cannot sample {amount} indices from 0..{length}"
        );
        let mut pool: Vec<usize> = (0..length).collect();
        for i in 0..amount {
            let j = i + ((rng.next_u64() as u128 * (length - i) as u128) >> 64) as usize;
            pool.swap(i, j);
        }
        pool.truncate(amount);
        IndexVec(pool)
    }

    #[cfg(test)]
    mod tests {
        use crate::rngs::SmallRng;
        use crate::SeedableRng;

        #[test]
        fn sample_yields_distinct_in_range() {
            let mut rng = SmallRng::seed_from_u64(9);
            let picks = super::sample(&mut rng, 100, 30).into_vec();
            assert_eq!(picks.len(), 30);
            let mut sorted = picks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 30);
            assert!(picks.iter().all(|&i| i < 100));
        }

        #[test]
        fn sample_all_is_permutation() {
            let mut rng = SmallRng::seed_from_u64(2);
            let mut picks = super::sample(&mut rng, 50, 50).into_vec();
            picks.sort_unstable();
            assert_eq!(picks, (0..50).collect::<Vec<_>>());
        }
    }
}
