#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the slice of rand's API the workspace uses: the [`Rng`] / [`SeedableRng`]
//! traits, [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64),
//! [`seq::SliceRandom`] Fisher–Yates shuffling, and
//! [`seq::index::sample`] partial index sampling.
//!
//! Every generator is deterministic in its seed, which is the property the
//! workspace's generators and algorithms actually rely on. The concrete
//! streams differ from crates.io `rand`; nothing in the workspace asserts
//! on exact stream values.

pub mod rngs;
pub mod seq;

/// Types that can seed themselves from a `u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A source of randomness.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of `T` (see [`Standard`]).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A uniform sample from the half-open `range`.
    ///
    /// Panics when the range is empty, matching `rand`.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// A Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::from_rng(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Value types producible uniformly at random (rand's `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types sampleable uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Draws one value in `[range.start, range.end)`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
                assert!(
                    range.start < range.end,
                    "cannot sample empty range {}..{}",
                    range.start,
                    range.end
                );
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                // Multiply-shift bounded sampling (Lemire); the residual
                // modulo bias over a 64-bit draw is negligible and the
                // workspace only needs determinism, not exact uniformity.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (range.start as u64).wrapping_add(hi) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
        assert!(
            range.start < range.end,
            "cannot sample empty range {}..{}",
            range.start,
            range.end
        );
        let u = f64::from_rng(rng);
        range.start + u * (range.end - range.start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&y));
            let z = rng.gen_range(0usize..3);
            assert!(z < 3);
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
