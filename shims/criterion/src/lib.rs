#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the slice of criterion the workspace's benches use: `Criterion`,
//! `benchmark_group` with `sample_size` / `warm_up_time` /
//! `measurement_time`, `bench_function`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is a simple mean over `sample_size` timed iterations after a
//! warm-up phase — adequate for the relative comparisons the workspace's
//! benches print, with none of criterion's statistics machinery. In test
//! mode (`cargo test --benches`) each benchmark runs exactly once so CI
//! smoke-checks stay fast.

use std::time::{Duration, Instant};

/// Re-export of the standard black box, like criterion's.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test --benches` / `cargo bench -- --test` pass `--test`.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("benchmark group: {name}");
        BenchmarkGroup {
            criterion: self,
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let test_mode = self.test_mode;
        run_one(name, 10, Duration::from_millis(100), test_mode, &mut f);
        self
    }
}

/// A named group of benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Time spent warming up before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Target time over which samples are spread (ignored by the shim
    /// beyond capping the sample count).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let test_mode = self.criterion.test_mode;
        run_one(name, self.sample_size, self.warm_up_time, test_mode, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F>(name: &str, sample_size: usize, warm_up: Duration, test_mode: bool, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    if test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("test {name} ... ok");
        return;
    }
    // Warm-up: run until the warm-up budget is spent.
    let start = Instant::now();
    while start.elapsed() < warm_up {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
    }
    // Measurement.
    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    for _ in 0..sample_size.max(1) {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        iters += b.iters;
    }
    let mean = total.as_secs_f64() / iters.max(1) as f64;
    println!("{name:<40} {:>12.3} ms/iter ({iters} iters)", mean * 1e3);
}

/// Passed to benchmark closures; times the hot loop.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, keeping its result alive via `black_box`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
