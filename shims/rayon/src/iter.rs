//! The parallel-iterator traits and adapters.
//!
//! A pipeline is a splittable base plus zero or more adapters. Drivers
//! ([`ParallelIterator::for_each`], [`ParallelIterator::collect`], …)
//! split the pipeline into near-equal contiguous parts, run each part's
//! sequential tail on a scoped thread, and merge the partial results in
//! part order.

/// Execution core shared by all drivers: split `p` into up to
/// `current_num_threads()` parts and run `run` on each part concurrently.
/// Partial results come back in part (i.e. input) order.
fn execute<P, R, F>(p: P, run: F) -> Vec<R>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P) -> R + Sync,
{
    let len = p.base_len();
    let min = p.min_split_len().max(1);
    let threads = crate::current_num_threads();
    let parts_wanted = threads.min(len.div_ceil(min)).max(1);
    if parts_wanted <= 1 || len <= 1 {
        return vec![run(p)];
    }

    let mut parts = Vec::with_capacity(parts_wanted);
    let mut rest = p;
    let mut remaining = len;
    let mut left = parts_wanted;
    while left > 1 {
        let take = remaining.div_ceil(left);
        let (head, tail) = rest.split_at(take);
        parts.push(head);
        rest = tail;
        remaining -= take;
        left -= 1;
    }
    parts.push(rest);

    std::thread::scope(|scope| {
        let run = &run;
        let handles: Vec<_> = parts
            .into_iter()
            .map(|part| scope.spawn(move || run(part)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

/// A splittable, thread-distributable iterator over `Item`s.
pub trait ParallelIterator: Sized + Send {
    /// The element type produced by the pipeline.
    type Item: Send;

    /// Number of elements in the underlying splittable base. Adapters that
    /// change the element count (`filter`, `flat_map_iter`) still report the
    /// base length; it is only used to pick split points.
    fn base_len(&self) -> usize;

    /// Minimum number of base elements worth handing to one thread.
    fn min_split_len(&self) -> usize {
        1
    }

    /// Splits the pipeline at `index` (in base elements).
    fn split_at(self, index: usize) -> (Self, Self);

    /// The sequential tail: a plain iterator over this part's items.
    fn seq(self) -> impl Iterator<Item = Self::Item>;

    /// Maps each item through `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Clone + Send + Sync,
    {
        Map { base: self, f }
    }

    /// Keeps the items for which `pred` returns true.
    fn filter<F>(self, pred: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Item) -> bool + Clone + Send + Sync,
    {
        Filter { base: self, pred }
    }

    /// Maps each item to a sequential iterator and flattens the results.
    fn flat_map_iter<I, F>(self, f: F) -> FlatMapIter<Self, F>
    where
        I: IntoIterator,
        I::Item: Send,
        F: Fn(Self::Item) -> I + Clone + Send + Sync,
    {
        FlatMapIter { base: self, f }
    }

    /// Requests at least `min` base elements per thread.
    fn with_min_len(self, min: usize) -> WithMinLen<Self> {
        WithMinLen { base: self, min }
    }

    /// Runs `f` on every item.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        execute(self, |part| part.seq().for_each(&f));
    }

    /// Runs `f` on every item with a per-thread scratch value from `init`.
    fn for_each_init<T, INIT, F>(self, init: INIT, f: F)
    where
        INIT: Fn() -> T + Send + Sync,
        F: Fn(&mut T, Self::Item) + Send + Sync,
    {
        execute(self, |part| {
            let mut scratch = init();
            part.seq().for_each(|item| f(&mut scratch, item));
        });
    }

    /// Counts the items.
    fn count(self) -> usize {
        execute(self, |part| part.seq().count()).into_iter().sum()
    }

    /// Sums the items.
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        execute(self, |part| part.seq().sum::<S>())
            .into_iter()
            .sum()
    }

    /// The largest item, or `None` when empty.
    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        execute(self, |part| part.seq().max())
            .into_iter()
            .flatten()
            .max()
    }

    /// The smallest item, or `None` when empty.
    fn min(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        execute(self, |part| part.seq().min())
            .into_iter()
            .flatten()
            .min()
    }

    /// Reduces the items with `op`, seeding each thread with `identity()`.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Send + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Send + Sync,
    {
        execute(self, |part| part.seq().fold(identity(), &op))
            .into_iter()
            .fold(identity(), &op)
    }

    /// Folds each thread's items into an accumulator from `identity`;
    /// combine the per-thread accumulators with [`Fold::reduce`].
    fn fold<A, ID, F>(self, identity: ID, fold_op: F) -> Fold<Self, ID, F>
    where
        A: Send,
        ID: Fn() -> A + Send + Sync,
        F: Fn(A, Self::Item) -> A + Send + Sync,
    {
        Fold {
            base: self,
            identity,
            fold_op,
        }
    }

    /// Collects the items, preserving input order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }
}

/// Marker for pipelines whose length is known exactly (all of them, in this
/// shim). Exists for rayon name compatibility.
pub trait IndexedParallelIterator: ParallelIterator {}

/// Types collectible from a parallel iterator.
pub trait FromParallelIterator<T: Send> {
    /// Builds the collection, preserving item order.
    fn from_par_iter<P: ParallelIterator<Item = T>>(p: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(p: P) -> Self {
        let parts = execute(p, |part| part.seq().collect::<Vec<T>>());
        let total = parts.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for part in parts {
            out.extend(part);
        }
        out
    }
}

/// Types convertible into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// The resulting pipeline type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Types whose references iterate in parallel (`par_iter`).
pub trait IntoParallelRefIterator<'data> {
    /// The resulting pipeline type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type (a shared reference).
    type Item: Send + 'data;
    /// Borrowing parallel iterator.
    fn par_iter(&'data self) -> Self::Iter;
}

/// Types whose mutable references iterate in parallel (`par_iter_mut`).
pub trait IntoParallelRefMutIterator<'data> {
    /// The resulting pipeline type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type (an exclusive reference).
    type Item: Send + 'data;
    /// Mutably borrowing parallel iterator.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

/// Parallel sorting methods on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Sorts (unstable) in natural order.
    fn par_sort_unstable(&mut self)
    where
        T: Ord;

    /// Sorts (unstable) by a comparator.
    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> std::cmp::Ordering + Sync;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }

    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> std::cmp::Ordering + Sync,
    {
        self.sort_unstable_by(|a, b| compare(a, b));
    }
}

/// Pipeline stage produced by [`ParallelIterator::map`].
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, R, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Clone + Send + Sync,
{
    type Item = R;

    fn base_len(&self) -> usize {
        self.base.base_len()
    }

    fn min_split_len(&self) -> usize {
        self.base.min_split_len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            Map {
                base: l,
                f: self.f.clone(),
            },
            Map { base: r, f: self.f },
        )
    }

    fn seq(self) -> impl Iterator<Item = R> {
        self.base.seq().map(self.f)
    }
}

impl<P, R, F> IndexedParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Clone + Send + Sync,
{
}

/// Pipeline stage produced by [`ParallelIterator::filter`].
pub struct Filter<P, F> {
    base: P,
    pred: F,
}

impl<P, F> ParallelIterator for Filter<P, F>
where
    P: ParallelIterator,
    F: Fn(&P::Item) -> bool + Clone + Send + Sync,
{
    type Item = P::Item;

    fn base_len(&self) -> usize {
        self.base.base_len()
    }

    fn min_split_len(&self) -> usize {
        self.base.min_split_len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            Filter {
                base: l,
                pred: self.pred.clone(),
            },
            Filter {
                base: r,
                pred: self.pred,
            },
        )
    }

    fn seq(self) -> impl Iterator<Item = P::Item> {
        self.base.seq().filter(move |item| (self.pred)(item))
    }
}

/// Pipeline stage produced by [`ParallelIterator::flat_map_iter`].
pub struct FlatMapIter<P, F> {
    base: P,
    f: F,
}

impl<P, I, F> ParallelIterator for FlatMapIter<P, F>
where
    P: ParallelIterator,
    I: IntoIterator,
    I::Item: Send,
    F: Fn(P::Item) -> I + Clone + Send + Sync,
{
    type Item = I::Item;

    fn base_len(&self) -> usize {
        self.base.base_len()
    }

    fn min_split_len(&self) -> usize {
        self.base.min_split_len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            FlatMapIter {
                base: l,
                f: self.f.clone(),
            },
            FlatMapIter { base: r, f: self.f },
        )
    }

    fn seq(self) -> impl Iterator<Item = I::Item> {
        self.base.seq().flat_map(self.f)
    }
}

/// Pipeline stage produced by [`ParallelIterator::with_min_len`].
pub struct WithMinLen<P> {
    base: P,
    min: usize,
}

impl<P: ParallelIterator> ParallelIterator for WithMinLen<P> {
    type Item = P::Item;

    fn base_len(&self) -> usize {
        self.base.base_len()
    }

    fn min_split_len(&self) -> usize {
        self.base.min_split_len().max(self.min)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            WithMinLen {
                base: l,
                min: self.min,
            },
            WithMinLen {
                base: r,
                min: self.min,
            },
        )
    }

    fn seq(self) -> impl Iterator<Item = P::Item> {
        self.base.seq()
    }
}

impl<P: ParallelIterator> IndexedParallelIterator for WithMinLen<P> {}

/// Deferred fold produced by [`ParallelIterator::fold`]; finish it with
/// [`Fold::reduce`].
pub struct Fold<P, ID, F> {
    base: P,
    identity: ID,
    fold_op: F,
}

impl<P, A, ID, F> Fold<P, ID, F>
where
    P: ParallelIterator,
    A: Send,
    ID: Fn() -> A + Send + Sync,
    F: Fn(A, P::Item) -> A + Send + Sync,
{
    /// Combines the per-thread fold accumulators with `reduce_op`.
    pub fn reduce<RID, R>(self, reduce_identity: RID, reduce_op: R) -> A
    where
        RID: Fn() -> A + Send + Sync,
        R: Fn(A, A) -> A + Send + Sync,
    {
        let Fold {
            base,
            identity,
            fold_op,
        } = self;
        execute(base, |part| part.seq().fold(identity(), &fold_op))
            .into_iter()
            .fold(reduce_identity(), reduce_op)
    }
}
