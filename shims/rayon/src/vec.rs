//! Parallel iteration over owned vectors.

use crate::iter::{IndexedParallelIterator, IntoParallelIterator, ParallelIterator};

/// Owning parallel iterator over a `Vec<T>`.
#[derive(Debug)]
pub struct IntoIter<T> {
    vec: Vec<T>,
}

impl<T: Send> ParallelIterator for IntoIter<T> {
    type Item = T;

    fn base_len(&self) -> usize {
        self.vec.len()
    }

    fn split_at(mut self, index: usize) -> (Self, Self) {
        let right = self.vec.split_off(index);
        (self, IntoIter { vec: right })
    }

    fn seq(self) -> impl Iterator<Item = T> {
        self.vec.into_iter()
    }
}

impl<T: Send> IndexedParallelIterator for IntoIter<T> {}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = IntoIter<T>;
    type Item = T;

    fn into_par_iter(self) -> IntoIter<T> {
        IntoIter { vec: self }
    }
}
