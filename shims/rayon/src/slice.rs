//! Parallel iteration over slices.

use crate::iter::{
    IndexedParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator,
};

/// Borrowing parallel iterator over a slice.
#[derive(Debug)]
pub struct Iter<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync> ParallelIterator for Iter<'data, T> {
    type Item = &'data T;

    fn base_len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at(index);
        (Iter { slice: l }, Iter { slice: r })
    }

    fn seq(self) -> impl Iterator<Item = &'data T> {
        self.slice.iter()
    }
}

impl<T: Sync> IndexedParallelIterator for Iter<'_, T> {}

/// Mutably borrowing parallel iterator over a slice.
#[derive(Debug)]
pub struct IterMut<'data, T> {
    slice: &'data mut [T],
}

impl<'data, T: Send> ParallelIterator for IterMut<'data, T> {
    type Item = &'data mut T;

    fn base_len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at_mut(index);
        (IterMut { slice: l }, IterMut { slice: r })
    }

    fn seq(self) -> impl Iterator<Item = &'data mut T> {
        self.slice.iter_mut()
    }
}

impl<T: Send> IndexedParallelIterator for IterMut<'_, T> {}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Iter = Iter<'data, T>;
    type Item = &'data T;

    fn par_iter(&'data self) -> Iter<'data, T> {
        Iter { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Iter = Iter<'data, T>;
    type Item = &'data T;

    fn par_iter(&'data self) -> Iter<'data, T> {
        Iter { slice: self }
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Iter = IterMut<'data, T>;
    type Item = &'data mut T;

    fn par_iter_mut(&'data mut self) -> IterMut<'data, T> {
        IterMut { slice: self }
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Iter = IterMut<'data, T>;
    type Item = &'data mut T;

    fn par_iter_mut(&'data mut self) -> IterMut<'data, T> {
        IterMut { slice: self }
    }
}
