#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Offline drop-in subset of the `rayon` data-parallelism API.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this shim provides the exact slice of rayon's API surface the workspace
//! uses, implemented on `std::thread::scope`. Parallel iterators are
//! represented as splittable pipelines: a splittable base (range, slice,
//! vector) plus composable adapters (`map`, `filter`, `flat_map_iter`, …).
//! Drivers split the pipeline into one part per thread, run each part's
//! sequential tail on its own scoped thread, and merge the partial results
//! in order, so `collect()` preserves item order exactly like rayon.
//!
//! Semantics intentionally preserved from rayon:
//!
//! * work executes on multiple OS threads (data races are real here, which
//!   the concurrency stress tests rely on);
//! * `collect`/`map` keep input order;
//! * a panic in a worker propagates to the caller;
//! * `ThreadPool::install` bounds the parallelism of nested calls.

use std::cell::Cell;
use std::num::NonZeroUsize;

pub mod iter;
pub mod range;
pub mod slice;
pub mod vec;

/// The rayon prelude: the traits that put `par_iter()` and friends in scope.
pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IndexedParallelIterator, IntoParallelIterator,
        IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator, ParallelSliceMut,
    };
}

thread_local! {
    /// Per-thread override installed by [`ThreadPool::install`].
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of threads parallel drivers will use in the current context.
pub fn current_num_threads() -> usize {
    THREAD_OVERRIDE.with(|o| o.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Error returned by [`ThreadPoolBuilder::build`]. The shim never fails to
/// build a pool; the type exists for signature compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`] with an explicit thread count.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with the default (ambient) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of threads; `0` means the ambient default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Never fails in this shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A scoped parallelism budget. Unlike real rayon no worker threads are kept
/// alive; the pool only pins [`current_num_threads`] for the duration of
/// [`ThreadPool::install`], which is all the workspace relies on.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count as the ambient parallelism.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let n = if self.num_threads == 0 {
            current_num_threads()
        } else {
            self.num_threads
        };
        THREAD_OVERRIDE.with(|o| {
            let prev = o.replace(Some(n));
            let result = f();
            o.set(prev);
            result
        })
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
    }

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..10_000u64).into_par_iter().map(|x| x * 2).collect();
        let expect: Vec<u64> = (0..10_000u64).map(|x| x * 2).collect();
        assert_eq!(v, expect);
    }

    #[test]
    fn sum_filter_count_fold_reduce() {
        let s: u64 = (0..1000u64).into_par_iter().sum();
        assert_eq!(s, 499_500);
        let data: Vec<u32> = (0..100).collect();
        let evens = data.par_iter().filter(|x| **x % 2 == 0).count();
        assert_eq!(evens, 50);
        let total = (0..100u64)
            .into_par_iter()
            .fold(|| 0u64, |a, x| a + x)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 4950);
    }

    #[test]
    fn par_iter_mut_writes_every_slot() {
        let mut data = vec![0u32; 4096];
        data.par_iter_mut().for_each(|x| *x = 7);
        assert!(data.iter().all(|&x| x == 7));
    }

    #[test]
    fn flat_map_iter_keeps_order() {
        let v: Vec<u32> = (0..100u32)
            .into_par_iter()
            .flat_map_iter(|x| (0..3).map(move |i| x * 3 + i))
            .collect();
        let expect: Vec<u32> = (0..300).collect();
        assert_eq!(v, expect);
    }

    #[test]
    fn worker_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            (0..1000u64).into_par_iter().for_each(|i| {
                assert!(i < 500, "boom");
            });
        });
        assert!(r.is_err());
    }
}
