//! Parallel iteration over integer ranges.
//!
//! A single generic impl over [`RangeInteger`] (rather than one impl per
//! integer type) keeps integer-literal fallback working: `(0..10_000)`
//! must infer `i32` exactly as it does with the real rayon.

use crate::iter::{IndexedParallelIterator, IntoParallelIterator, ParallelIterator};

/// Integer types usable as parallel range bounds.
pub trait RangeInteger: Sized + Send + Copy {
    /// Number of elements in `start..end` (0 if empty).
    fn span(start: Self, end: Self) -> usize;
    /// `self + i`, for splitting.
    fn offset(self, i: usize) -> Self;
}

macro_rules! impl_range_integer {
    ($($t:ty),*) => {$(
        impl RangeInteger for $t {
            #[inline]
            fn span(start: Self, end: Self) -> usize {
                if end <= start { 0 } else { (end - start) as usize }
            }
            #[inline]
            fn offset(self, i: usize) -> Self {
                self + i as $t
            }
        }
    )*};
}

impl_range_integer!(u16, u32, u64, usize, i32, i64);

/// Parallel iterator over a `Range<T>`.
#[derive(Clone, Debug)]
pub struct Iter<T> {
    range: std::ops::Range<T>,
}

impl<T: RangeInteger> ParallelIterator for Iter<T> {
    type Item = T;

    fn base_len(&self) -> usize {
        T::span(self.range.start, self.range.end)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = self.range.start.offset(index);
        (
            Iter {
                range: self.range.start..mid,
            },
            Iter {
                range: mid..self.range.end,
            },
        )
    }

    fn seq(self) -> impl Iterator<Item = T> {
        let mut next = self.range.start;
        let len = T::span(self.range.start, self.range.end);
        (0..len).map(move |_| {
            let cur = next;
            next = next.offset(1);
            cur
        })
    }
}

impl<T: RangeInteger> IndexedParallelIterator for Iter<T> {}

impl<T: RangeInteger> IntoParallelIterator for std::ops::Range<T> {
    type Iter = Iter<T>;
    type Item = T;

    fn into_par_iter(self) -> Iter<T> {
        Iter { range: self }
    }
}
