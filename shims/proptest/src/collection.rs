//! Collection strategies.

use crate::{Strategy, TestRng};

/// Size specifications accepted by [`vec`]: an exact `usize` or a
/// half-open `Range<usize>`.
pub trait IntoSizeRange {
    /// Lower bound (inclusive) and upper bound (exclusive).
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

impl IntoSizeRange for std::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        (self.start, self.end)
    }
}

/// Strategy for vectors whose elements come from `element` and whose length
/// falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (lo, hi) = size.bounds();
    assert!(lo < hi, "empty vec size range");
    VecStrategy { element, lo, hi }
}

/// Strategy produced by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    lo: usize,
    hi: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.lo + rng.below(self.hi - self.lo);
        (0..len).map(|_| self.element.gen(rng)).collect()
    }
}
