#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Offline drop-in subset of the `proptest` property-testing API.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the slice of proptest the workspace's tests use: the [`Strategy`] trait
//! with `prop_map` / `prop_flat_map`, range / tuple / vector / string
//! strategies, the [`proptest!`] macro, `prop_assert!` / `prop_assert_eq!`,
//! and [`ProptestConfig::with_cases`].
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! its case index and message. Case generation is deterministic per test
//! name, so failures reproduce exactly under `cargo test`.

pub mod collection;

/// Everything a proptest-based test file needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Failure raised by `prop_assert!` and friends inside a [`proptest!`] body.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure carrying `msg`.
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator driving case generation (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds deterministically from a test name.
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform `usize` below `bound` (`0` when `bound == 0`).
    pub fn below(&mut self, bound: usize) -> usize {
        if bound == 0 {
            0
        } else {
            ((self.next_u64() as u128 * bound as u128) >> 64) as usize
        }
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn gen(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Generates a value, then generates from the strategy `f` derives
    /// from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn gen(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.gen(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn gen(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.gen(rng)).gen(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn gen(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as u64).wrapping_add(off) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn gen(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// String strategy from a regex-like pattern. Only the form `.{m,n}` (any
/// characters, length `m..=n`) is interpreted; any other pattern generates
/// itself literally. That covers the fuzz patterns the workspace uses while
/// keeping the shim dependency-free.
impl Strategy for &str {
    type Value = String;

    fn gen(&self, rng: &mut TestRng) -> String {
        if let Some(rest) = self.strip_prefix(".{") {
            if let Some(bounds) = rest.strip_suffix('}') {
                if let Some((lo, hi)) = bounds.split_once(',') {
                    if let (Ok(lo), Ok(hi)) = (lo.parse::<usize>(), hi.parse::<usize>()) {
                        let len = lo + rng.below(hi.saturating_sub(lo) + 1);
                        return (0..len).map(|_| random_char(rng)).collect();
                    }
                }
            }
        }
        (*self).to_string()
    }
}

/// Adversarial character mix for fuzzing text parsers: digits and
/// separators dominate so numeric readers see near-miss inputs, with
/// control and multi-byte characters sprinkled in.
fn random_char(rng: &mut TestRng) -> char {
    match rng.below(10) {
        0..=3 => char::from(b'0' + rng.below(10) as u8),
        4 => ' ',
        5 => '\n',
        6 => ['\t', '\r', '#', '%', '-', '+', '.', 'e'][rng.below(8)],
        7..=8 => char::from(b' ' + rng.below(95) as u8),
        _ => char::from_u32(0x80 + rng.below(0xFFF) as u32).unwrap_or('\u{fffd}'),
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn gen(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
}

/// The proptest entry macro: wraps property functions into `#[test]`s that
/// run `config.cases` random cases each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $(let $pat = $crate::Strategy::gen(&$strat, &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property {} failed at case {}: {}", stringify!($name), case, e);
                }
            }
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// the process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {} != {} (both {:?})",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(0u32..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn flat_map_chains((n, v) in (1usize..8).prop_flat_map(|n|
            crate::collection::vec(0usize..n, n).prop_map(move |v| (n, v)))
        ) {
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&x| x < n));
        }

        #[test]
        fn string_pattern_lengths(s in ".{0,40}") {
            prop_assert!(s.chars().count() <= 40);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unreachable_code)]
            fn inner(x in 0u32..10) {
                prop_assert!(x >= 10, "x was {}", x);
            }
        }
        inner();
    }
}
