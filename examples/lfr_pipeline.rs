//! LFR benchmark pipeline: generate a ground-truth instance, run the
//! paper's four algorithms, and score both modularity and ground-truth
//! recovery — a miniature of the Fig. 8 experiment.
//!
//! Run with: `cargo run --release --example lfr_pipeline [mu]`

use parcom::community::compare::{adjusted_rand_index, jaccard_index, nmi};
use parcom::community::{quality::modularity, CommunityDetector, Epp, Plm, Plp};
use parcom::generators::{lfr, LfrParams};

fn main() {
    let mu: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.3);
    let n = 5_000;
    println!("generating LFR benchmark: n={n}, mu={mu}");
    let (graph, truth) = lfr(LfrParams::benchmark(n, mu), 42);
    println!(
        "  -> m={}, {} planted communities\n",
        graph.edge_count(),
        truth.number_of_subsets()
    );

    let mut algorithms: Vec<Box<dyn CommunityDetector + Send>> = vec![
        Box::new(Plp::new()),
        Box::new(Plm::new()),
        Box::new(Plm::with_refinement()),
        Box::new(Epp::plp_plm(4)),
    ];

    println!(
        "{:<18} {:>10} {:>12} {:>9} {:>9} {:>9}",
        "algorithm", "time_ms", "modularity", "jaccard", "ARI", "NMI"
    );
    for algo in algorithms.iter_mut() {
        let start = std::time::Instant::now();
        let zeta = algo.detect(&graph);
        let elapsed = start.elapsed();
        println!(
            "{:<18} {:>10.1} {:>12.4} {:>9.3} {:>9.3} {:>9.3}",
            algo.name(),
            elapsed.as_secs_f64() * 1e3,
            modularity(&graph, &zeta),
            jaccard_index(&zeta, &truth),
            adjusted_rand_index(&zeta, &truth),
            nmi(&zeta, &truth),
        );
    }
    println!(
        "\nplanted-partition modularity: {:.4}",
        modularity(&graph, &truth)
    );
}
