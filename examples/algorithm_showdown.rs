//! Algorithm showdown: every implemented algorithm — the paper's four plus
//! all competitor reimplementations — on one planted-partition instance,
//! with time, modularity and ground-truth recovery side by side. A
//! single-instance miniature of the paper's Figs. 5–7.
//!
//! Run with: `cargo run --release --example algorithm_showdown`

use parcom::community::compare::jaccard_index;
use parcom::community::{
    quality::modularity, Cggc, Cnm, CommunityDetector, Epp, Louvain, Pam, Plm, Plp, Rg,
};
use parcom::generators::{planted_partition, PlantedPartitionParams};

fn main() {
    let (graph, truth) = planted_partition(
        PlantedPartitionParams {
            n: 5_000,
            k: 25,
            p_in: 0.02,
            p_out: 0.0005,
        },
        99,
    );
    println!(
        "planted partition: n={}, m={}, k=25 (truth modularity {:.4})\n",
        graph.node_count(),
        graph.edge_count(),
        modularity(&graph, &truth)
    );

    let mut algorithms: Vec<Box<dyn CommunityDetector + Send>> = vec![
        Box::new(Plp::new()),
        Box::new(Plm::new()),
        Box::new(Plm::with_refinement()),
        Box::new(Epp::plp_plm(4)),
        Box::new(Epp::plp_plmr(4)),
        Box::new(Louvain::new()),
        Box::new(Pam::new()),
        Box::new(Pam::cel()),
        Box::new(Cnm::new()),
        Box::new(Rg::new()),
        Box::new(Cggc::new(4)),
        Box::new(Cggc::iterated(4)),
    ];

    println!(
        "{:<18} {:>10} {:>12} {:>12} {:>9}",
        "algorithm", "time_ms", "modularity", "communities", "jaccard"
    );
    for algo in algorithms.iter_mut() {
        let start = std::time::Instant::now();
        let zeta = algo.detect(&graph);
        let elapsed = start.elapsed();
        println!(
            "{:<18} {:>10.1} {:>12.4} {:>12} {:>9.3}",
            algo.name(),
            elapsed.as_secs_f64() * 1e3,
            modularity(&graph, &zeta),
            zeta.number_of_subsets(),
            jaccard_index(&zeta, &truth),
        );
    }
}
