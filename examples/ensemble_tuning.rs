//! Ensemble tuning: the §V-D analysis. Measures (1) the diversity of PLP
//! base solutions via Jaccard dissimilarity, (2) how EPP quality moves with
//! the ensemble size b, and (3) the effect of explicit PLP randomization in
//! an ensemble setting — the ablations behind the paper's choice of b = 4
//! with implicitly randomized bases.
//!
//! Run with: `cargo run --release --example ensemble_tuning`

use parcom::community::compare::jaccard_dissimilarity;
use parcom::community::{quality::modularity, CommunityDetector, Epp, Plp};
use parcom::generators::{lfr, LfrParams};

fn main() {
    let (graph, _) = lfr(LfrParams::benchmark(8_000, 0.4), 5);
    println!(
        "instance: LFR n={} m={} mu=0.4\n",
        graph.node_count(),
        graph.edge_count()
    );

    // (1) base-solution diversity
    let bases: Vec<_> = (0..4)
        .map(|i| {
            let mut plp = Plp::new();
            plp.set_seed(i as u64 + 1);
            plp.detect(&graph)
        })
        .collect();
    println!("PLP base-solution diversity (Jaccard dissimilarity):");
    for i in 0..bases.len() {
        for j in (i + 1)..bases.len() {
            println!(
                "  base {i} vs base {j}: {:.3}",
                jaccard_dissimilarity(&bases[i], &bases[j])
            );
        }
    }

    // (2) ensemble size sweep
    println!("\nEPP(b, PLP, PLM) ensemble size sweep:");
    for b in [1usize, 2, 4, 8] {
        let start = std::time::Instant::now();
        let zeta = Epp::plp_plm(b).detect(&graph);
        println!(
            "  b={b}: modularity {:.4}, {} communities, {:.0} ms",
            modularity(&graph, &zeta),
            zeta.number_of_subsets(),
            start.elapsed().as_secs_f64() * 1e3
        );
    }

    // (3) explicit randomization ablation (paper: no significant gain,
    // slower on large graphs — so it is off by default)
    println!("\nexplicit PLP randomization in the ensemble:");
    for explicit in [false, true] {
        let bases: Vec<Box<dyn CommunityDetector + Send>> = (0..4)
            .map(|i| {
                Box::new(Plp {
                    explicit_randomization: explicit,
                    seed: i as u64 + 1,
                    ..Plp::default()
                }) as Box<dyn CommunityDetector + Send>
            })
            .collect();
        let mut epp = Epp::new(bases, Box::new(parcom::community::Plm::new()));
        let start = std::time::Instant::now();
        let zeta = epp.detect(&graph);
        println!(
            "  explicit={explicit}: modularity {:.4}, {:.0} ms",
            modularity(&graph, &zeta),
            start.elapsed().as_secs_f64() * 1e3
        );
    }
}
