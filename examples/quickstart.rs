//! Quickstart: build a graph, detect communities, inspect the result.
//!
//! Run with: `cargo run --release --example quickstart`

use parcom::community::{quality::modularity, CommunityDetector, Plm};
use parcom::graph::GraphBuilder;

fn main() {
    // Two obvious communities: a pair of triangles joined by one edge.
    let mut builder = GraphBuilder::new(6);
    for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)] {
        builder.add_unweighted_edge(u, v);
    }
    let graph = builder.build();

    // PLM — the paper's recommended default algorithm.
    let mut plm = Plm::new();
    let communities = plm.detect(&graph);

    println!(
        "found {} communities, modularity {:.4}",
        communities.number_of_subsets(),
        modularity(&graph, &communities)
    );
    for (community, members) in communities.members().iter().enumerate() {
        if !members.is_empty() {
            println!("  community {community}: {members:?}");
        }
    }

    assert_eq!(communities.number_of_subsets(), 2);
    assert!(communities.in_same_subset(0, 2));
    assert!(!communities.in_same_subset(2, 3));
}
