//! Web-graph analysis pipeline: generate an R-MAT web graph with the
//! paper's parameters, persist it in METIS format, reload, detect
//! communities at interactive speed with PLP and PLM, and export the
//! community graph for visualization — the full workflow the paper's
//! "interactive data analysis on a multicore workstation" scenario targets.
//!
//! Run with: `cargo run --release --example web_graph_pipeline`

use parcom::community::{quality::modularity, CommunityDetector, CommunityGraph, Plm, Plp};
use parcom::generators::{rmat, RmatParams};
use parcom::io;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::env::temp_dir().join("parcom_web_pipeline");
    std::fs::create_dir_all(&out_dir)?;

    // 1. generate (paper's R-MAT parameters, scaled to a workstation demo)
    let graph = rmat(RmatParams::paper_with_edge_factor(14, 16), 7);
    println!(
        "generated web graph: n={}, m={}, max degree {}",
        graph.node_count(),
        graph.edge_count(),
        graph.max_degree()
    );

    // 2. persist and reload (METIS, the DIMACS corpus format)
    let path = out_dir.join("web.metis");
    io::write_metis(&graph, &path)?;
    let reloaded = io::read_metis(&path)?;
    assert_eq!(reloaded.edge_count(), graph.edge_count());
    println!("round-tripped through {}", path.display());

    // 3. detect: PLP for speed, PLM for quality
    for (name, zeta) in [
        ("PLP", Plp::new().detect(&reloaded)),
        ("PLM", Plm::new().detect(&reloaded)),
    ] {
        println!(
            "{name}: {} communities, modularity {:.4}",
            zeta.number_of_subsets(),
            modularity(&reloaded, &zeta)
        );
        // 4. export the community graph for rendering
        let cg = CommunityGraph::build(&reloaded, &zeta);
        let dot = out_dir.join(format!("communities_{name}.dot"));
        io::write_community_graph_dot(&cg, name, &dot)?;
        println!("  community graph written to {}", dot.display());
    }
    Ok(())
}
