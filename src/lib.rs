#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # parcom — parallel community detection in massive networks
//!
//! A Rust reproduction of Staudt & Meyerhenke, *Engineering Parallel
//! Algorithms for Community Detection in Massive Networks*: the parallel
//! label propagation (PLP), parallel Louvain (PLM/PLMR) and ensemble
//! preprocessing (EPP) community detection algorithms, the substrate they
//! run on, every competitor the paper evaluates against, and a benchmark
//! harness regenerating the paper's tables and figures.
//!
//! This facade re-exports the workspace crates under stable module names:
//!
//! * [`graph`] — CSR graphs, partitions, parallel coarsening, analytics
//!   (components, clustering coefficients, k-cores, assortativity).
//! * [`generators`] — LFR, R-MAT/Kronecker, planted partition,
//!   Barabási–Albert, Watts–Strogatz, hyperbolic, grids, cliques.
//! * [`community`] — the detection algorithms and quality/similarity
//!   measures.
//! * [`io`] — METIS, edge-list, partition, DOT and GML formats.
//!
//! # Quickstart
//!
//! ```
//! use parcom::community::{quality::modularity, CommunityDetector, Plm};
//! use parcom::graph::GraphBuilder;
//!
//! // two triangles joined by one edge
//! let mut b = GraphBuilder::new(6);
//! for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)] {
//!     b.add_unweighted_edge(u, v);
//! }
//! let g = b.build();
//!
//! let communities = Plm::new().detect(&g);
//! assert_eq!(communities.number_of_subsets(), 2);
//! assert!(modularity(&g, &communities) > 0.3);
//! ```

pub use parcom_core as community;
pub use parcom_generators as generators;
pub use parcom_graph as graph;
pub use parcom_io as io;

/// The most commonly used items across all crates.
pub mod prelude {
    pub use parcom_core::prelude::*;
    pub use parcom_generators::{lfr, LfrParams};
    pub use parcom_graph::prelude::*;
}
